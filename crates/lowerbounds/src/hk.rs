//! The graph `H_k` of **Figure 1** — the subgraph whose detection requires
//! near-quadratic time (Theorem 1.2).
//!
//! `H_k` consists of:
//! * five *anchor cliques*, one of each size `6..=10`, whose special
//!   vertices form a `K_5` spine (this pins any isomorphism and brings the
//!   diameter down to 3);
//! * a *top* and a *bottom* copy of the body `H`: `k` triangles
//!   `Tri_1..Tri_k` plus two endpoints `A` and `B`, with `A` joined to every
//!   triangle's A-vertex and `B` to every B-vertex;
//! * the two top↔bottom edges `A_top–A_bot` and `B_top–B_bot` — exactly the
//!   edges Alice and Bob control in the reduction;
//! * every non-clique vertex attached to the special vertex of the clique
//!   that "marks" its direction.

use graphlib::{Graph, GraphBuilder};

/// Top or bottom copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// The top copy (`⊤`).
    Top,
    /// The bottom copy (`⊥`).
    Bottom,
}

/// The A/B/Mid role of a triangle vertex or endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// Alice's side.
    A,
    /// Bob's side.
    B,
    /// The shared middle vertex of a triangle.
    Mid,
}

/// Semantic label of each `H_k` vertex.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HkLabel {
    /// Member `idx` of the clique of size `6 + which`.
    Clique {
        /// Which clique (0..5, sizes 6..=10).
        which: usize,
        /// Index within the clique; 0 is the special vertex.
        idx: usize,
    },
    /// The endpoint of a side/role (`role` is `A` or `B`).
    Endpoint {
        /// Top or bottom.
        side: Side,
        /// A or B.
        role: Role,
    },
    /// Vertex `role` of triangle `tri` in copy `side`.
    Triangle {
        /// Top or bottom.
        side: Side,
        /// Triangle index in `0..k`.
        tri: usize,
        /// A, B, or Mid.
        role: Role,
    },
}

/// Which anchor clique (0..5, i.e. size `6 + which`) marks a direction.
/// Alice's parts use cliques 0 and 2 (sizes 6 and 8), Bob's use 1 and 3
/// (sizes 7 and 9), the shared middles use 4 (size 10) — matching the
/// `V_A / V_B / U` partition of §3.3.
pub fn clique_for(side: Side, role: Role) -> usize {
    match (side, role) {
        (Side::Top, Role::A) => 0,
        (Side::Bottom, Role::A) => 2,
        (Side::Top, Role::B) => 1,
        (Side::Bottom, Role::B) => 3,
        (_, Role::Mid) => 4,
    }
}

/// The constructed `H_k` with its vertex labels.
#[derive(Debug, Clone)]
pub struct HkGraph {
    /// The graph.
    pub graph: Graph,
    /// Label per vertex.
    pub labels: Vec<HkLabel>,
    /// The `k` parameter.
    pub k: usize,
}

impl HkGraph {
    /// Builds `H_k` for `k >= 1`.
    #[allow(clippy::needless_range_loop)] // clique index addresses a fixed array
    pub fn build(k: usize) -> Self {
        assert!(k >= 1);
        let mut labels = Vec::new();
        // Cliques first: clique `c` has size 6 + c; vertex 0 is special.
        let mut clique_start = [0usize; 5];
        for c in 0..5 {
            clique_start[c] = labels.len();
            for idx in 0..(6 + c) {
                labels.push(HkLabel::Clique { which: c, idx });
            }
        }
        let special = |c: usize| clique_start[c];

        let mut endpoint = std::collections::HashMap::new();
        let mut tri = std::collections::HashMap::new();
        for &side in &[Side::Top, Side::Bottom] {
            for &role in &[Role::A, Role::B] {
                endpoint.insert((side, role), labels.len());
                labels.push(HkLabel::Endpoint { side, role });
            }
            for t in 0..k {
                for &role in &[Role::A, Role::B, Role::Mid] {
                    tri.insert((side, t, role), labels.len());
                    labels.push(HkLabel::Triangle { side, tri: t, role });
                }
            }
        }

        let n = labels.len();
        let mut b = GraphBuilder::new(n);
        // Clique interiors.
        for c in 0..5 {
            for i in 0..(6 + c) {
                for j in (i + 1)..(6 + c) {
                    b.add_edge(clique_start[c] + i, clique_start[c] + j);
                }
            }
        }
        // Special-vertex K5 spine.
        for c in 0..5 {
            for d in (c + 1)..5 {
                b.add_edge(special(c), special(d));
            }
        }
        for &side in &[Side::Top, Side::Bottom] {
            // Endpoints attach to their marker clique.
            for &role in &[Role::A, Role::B] {
                b.add_edge(endpoint[&(side, role)], special(clique_for(side, role)));
            }
            for t in 0..k {
                // Triangle edges.
                b.add_edge(tri[&(side, t, Role::A)], tri[&(side, t, Role::B)]);
                b.add_edge(tri[&(side, t, Role::B)], tri[&(side, t, Role::Mid)]);
                b.add_edge(tri[&(side, t, Role::Mid)], tri[&(side, t, Role::A)]);
                // Endpoint-to-triangle wiring.
                b.add_edge(endpoint[&(side, Role::A)], tri[&(side, t, Role::A)]);
                b.add_edge(endpoint[&(side, Role::B)], tri[&(side, t, Role::B)]);
                // Marker attachments.
                for &role in &[Role::A, Role::B, Role::Mid] {
                    b.add_edge(tri[&(side, t, role)], special(clique_for(side, role)));
                }
            }
        }
        // The two cross edges Alice and Bob control.
        b.add_edge(
            endpoint[&(Side::Top, Role::A)],
            endpoint[&(Side::Bottom, Role::A)],
        );
        b.add_edge(
            endpoint[&(Side::Top, Role::B)],
            endpoint[&(Side::Bottom, Role::B)],
        );

        HkGraph {
            graph: b.build(),
            labels,
            k,
        }
    }

    /// Number of vertices: `40` clique vertices plus `2(2 + 3k)`.
    pub fn expected_size(k: usize) -> usize {
        40 + 2 * (2 + 3 * k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_is_linear_in_k() {
        for k in 1..5 {
            let h = HkGraph::build(k);
            assert_eq!(h.graph.n(), HkGraph::expected_size(k), "k={k}");
            assert_eq!(h.labels.len(), h.graph.n());
        }
    }

    #[test]
    fn diameter_is_three() {
        for k in [1usize, 2, 3] {
            let h = HkGraph::build(k);
            assert_eq!(
                graphlib::diameter::diameter(&h.graph),
                Some(3),
                "k={k}: H_k has diameter 3 (Property 1 analogue)"
            );
        }
    }

    #[test]
    fn contains_exactly_one_clique_of_each_anchor_size() {
        let h = HkGraph::build(2);
        // K10 copies: exactly C(10,10)=1; K9 copies include subsets of K10.
        assert_eq!(graphlib::cliques::count_ksub(&h.graph, 10), 1);
        // K9s: one full K9 clique + 10 inside K10.
        assert_eq!(graphlib::cliques::count_ksub(&h.graph, 9), 1 + 10);
        assert_eq!(graphlib::cliques::clique_number(&h.graph), 10);
    }

    #[test]
    fn endpoints_have_degree_k_plus_constant() {
        let h = HkGraph::build(3);
        for (v, l) in h.labels.iter().enumerate() {
            if let HkLabel::Endpoint { .. } = l {
                // k triangle edges + 1 clique marker + 1 cross edge.
                assert_eq!(h.graph.degree(v), 3 + 2, "endpoint degree");
            }
        }
    }

    #[test]
    fn triangle_vertices_form_triangles() {
        let h = HkGraph::build(2);
        let find = |side, t, role| {
            h.labels
                .iter()
                .position(|&l| l == HkLabel::Triangle { side, tri: t, role })
                .unwrap()
        };
        for &side in &[Side::Top, Side::Bottom] {
            for t in 0..2 {
                let a = find(side, t, Role::A);
                let b = find(side, t, Role::B);
                let m = find(side, t, Role::Mid);
                assert!(h.graph.has_edge(a, b));
                assert!(h.graph.has_edge(b, m));
                assert!(h.graph.has_edge(m, a));
            }
        }
    }

    #[test]
    fn cross_edges_present() {
        let h = HkGraph::build(2);
        let find = |side, role| {
            h.labels
                .iter()
                .position(|&l| l == HkLabel::Endpoint { side, role })
                .unwrap()
        };
        assert!(h
            .graph
            .has_edge(find(Side::Top, Role::A), find(Side::Bottom, Role::A)));
        assert!(h
            .graph
            .has_edge(find(Side::Top, Role::B), find(Side::Bottom, Role::B)));
        // No diagonal cross edges.
        assert!(!h
            .graph
            .has_edge(find(Side::Top, Role::A), find(Side::Bottom, Role::B)));
    }

    #[test]
    fn connected() {
        assert!(graphlib::components::is_connected(&HkGraph::build(4).graph));
    }
}
