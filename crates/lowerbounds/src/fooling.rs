//! The **Theorem 4.1** fooling adversary, executable: deterministic
//! triangle-vs-hexagon indistinguishability under low communication.
//!
//! A deterministic algorithm runs on cycles whose nodes come from the
//! tripartite namespace `N_0, N_1, N_2`; each node sees only its own
//! identifier and its two neighbors' identifiers and exchanges prefix-free
//! bit-string messages. The adversary:
//!
//! 1. runs the algorithm (wrapped with the §4 decision-broadcast round, so
//!    Claim 4.3 holds) on **every** triangle `(u_0, u_1, u_2) ∈ N_0×N_1×N_2`;
//! 2. buckets the triangles by their *complete transcript* (the canonical
//!    ordering of §4, which is uniquely parseable because messages form a
//!    prefix code);
//! 3. takes the biggest bucket — at least `n³ / 2^{6(C+1)}` triangles — and
//!    views it as a 3-uniform tripartite hypergraph;
//! 4. finds a complete tripartite block `K^(3)(2)` (Erdős, Theorem 4.2
//!    guarantees one once the bucket is dense enough);
//! 5. splices the block's six identifiers into a hexagon and runs the
//!    algorithm on it: every node's view is consistent with some triangle
//!    in the bucket, so the algorithm *rejects the triangle-free hexagon* —
//!    a correctness violation.
//!
//! Concrete algorithm families are provided: an `IdHashAlgo` with a `c`-bit
//! neighbor digest (fooled whenever `c < log n`, by pigeonhole) and the
//! `c = log N` full-identifier algorithm (never fooled — the bound is
//! tight).

use congest::BitString;
use graphlib::FxHashMap;
use rayon::prelude::*;

/// A node's local view on a 2-regular topology, oriented by namespace
/// part: `succ` is the neighbor in the next part (mod 3), `pred` in the
/// previous.
#[derive(Debug, Clone, Copy)]
pub struct NodeView {
    /// Own identifier.
    pub id: u64,
    /// Identifier across the successor port.
    pub succ_id: u64,
    /// Identifier across the predecessor port.
    pub pred_id: u64,
    /// Which namespace part (0, 1, 2) this node's id belongs to.
    pub part: usize,
}

/// Messages received so far, round-indexed.
#[derive(Debug, Clone, Default)]
pub struct Received {
    /// Per round, the message that arrived from the successor.
    pub from_succ: Vec<BitString>,
    /// Per round, the message that arrived from the predecessor.
    pub from_pred: Vec<BitString>,
}

/// A deterministic algorithm in the §4 setting. Message functions must be
/// deterministic in the view + history, emit at least one bit, and form a
/// prefix code per (view, history) family.
pub trait FoolableAlgo: Sync {
    /// Number of communication rounds.
    fn rounds(&self) -> usize;
    /// The message sent in `round` (1-based) towards the successor
    /// (`to_succ = true`) or predecessor.
    fn message(
        &self,
        view: &NodeView,
        round: usize,
        to_succ: bool,
        received: &Received,
    ) -> BitString;
    /// Final decision: `true` = reject ("I am in a triangle").
    fn decide(&self, view: &NodeView, received: &Received) -> bool;
}

/// Outcome of running an algorithm (with the §4 `A'` wrapper) on a cycle.
#[derive(Debug, Clone)]
pub struct CycleRun {
    /// Per-node §4 transcripts: messages to successor (in round order),
    /// then messages to predecessor.
    pub node_transcripts: Vec<BitString>,
    /// Per-node `A'` decisions (reject iff the node or a neighbor rejected
    /// under `A`).
    pub rejects: Vec<bool>,
}

impl CycleRun {
    /// The §4 complete transcript: node transcripts concatenated in
    /// namespace-part order (uniquely parseable given the prefix-code
    /// property).
    pub fn complete_transcript(&self) -> BitString {
        let mut t = BitString::new();
        for nt in &self.node_transcripts {
            t.extend(nt);
        }
        t
    }
}

/// Runs `algo` (wrapped with the decision-broadcast round of §4) on the
/// cycle with the given identifiers; `ids[i]` must belong to part
/// `i mod 3`, and the cycle length must be a positive multiple of 3.
pub fn run_on_cycle<A: FoolableAlgo>(algo: &A, ids: &[u64]) -> CycleRun {
    let l = ids.len();
    assert!(
        l >= 3 && l.is_multiple_of(3),
        "cycle length must be a multiple of 3"
    );
    let views: Vec<NodeView> = (0..l)
        .map(|i| NodeView {
            id: ids[i],
            succ_id: ids[(i + 1) % l],
            pred_id: ids[(i + l - 1) % l],
            part: i % 3,
        })
        .collect();
    let mut received: Vec<Received> = vec![Received::default(); l];
    let mut to_succ_log: Vec<Vec<BitString>> = vec![Vec::new(); l];
    let mut to_pred_log: Vec<Vec<BitString>> = vec![Vec::new(); l];

    for round in 1..=algo.rounds() {
        let outgoing: Vec<(BitString, BitString)> = (0..l)
            .map(|i| {
                (
                    algo.message(&views[i], round, true, &received[i]),
                    algo.message(&views[i], round, false, &received[i]),
                )
            })
            .collect();
        for (i, (succ_msg, pred_msg)) in outgoing.into_iter().enumerate() {
            assert!(
                !succ_msg.is_empty() && !pred_msg.is_empty(),
                "§4 requires at least one bit per edge per round"
            );
            // i's succ message arrives at (i+1)'s pred port, and vice versa.
            received[(i + 1) % l].from_pred.push(succ_msg.clone());
            received[(i + l - 1) % l].from_succ.push(pred_msg.clone());
            to_succ_log[i].push(succ_msg);
            to_pred_log[i].push(pred_msg);
        }
    }

    // Base decisions, then the A' wrapper: one extra round broadcasting the
    // decision; a node accepts iff it and both neighbors accepted.
    let base: Vec<bool> = (0..l)
        .map(|i| algo.decide(&views[i], &received[i]))
        .collect();
    let rejects: Vec<bool> = (0..l)
        .map(|i| base[i] || base[(i + 1) % l] || base[(i + l - 1) % l])
        .collect();

    let node_transcripts = (0..l)
        .map(|i| {
            let mut t = BitString::new();
            for m in &to_succ_log[i] {
                t.extend(m);
            }
            for m in &to_pred_log[i] {
                t.extend(m);
            }
            t
        })
        .collect();
    CycleRun {
        node_transcripts,
        rejects,
    }
}

/// Result of a successful fooling attack.
#[derive(Debug, Clone)]
pub struct FoolingWitness {
    /// The `K^(3)(2)` block: two ids per part.
    pub block: [[u64; 2]; 3],
    /// The hexagon identifiers in cycle order `u0 u1 u2 u0' u1' u2'`.
    pub hexagon: Vec<u64>,
    /// The shared transcript of the bucket.
    pub transcript: BitString,
    /// Size of the transcript bucket the block was found in.
    pub bucket_size: usize,
    /// The hexagon run (some node must reject for the attack to count).
    pub hexagon_rejects: Vec<bool>,
}

/// Statistics of the adversary's search (reported even when no attack is
/// found, e.g. against the full-identifier algorithm).
#[derive(Debug, Clone)]
pub struct AdversaryReport {
    /// Number of triangles enumerated (`n³`).
    pub triangles: usize,
    /// Number of distinct complete transcripts observed.
    pub transcript_classes: usize,
    /// Size of the largest transcript bucket.
    pub largest_bucket: usize,
    /// Whether every triangle was (correctly) rejected — Claim 4.3.
    pub all_triangles_rejected: bool,
    /// The successful attack, if one was found.
    pub witness: Option<FoolingWitness>,
}

/// Runs the full Theorem 4.1 adversary against `algo` with `n` identifiers
/// per namespace part (`N_i = { 3j + i }`, disjoint by residue).
///
/// `n` must be at most 64 (the block search uses 64-bit row sets).
pub fn run_adversary<A: FoolableAlgo>(algo: &A, n: usize) -> AdversaryReport {
    assert!(
        (2..=64).contains(&n),
        "adversary supports 2..=64 ids per part"
    );
    let part_id = |part: usize, idx: usize| (3 * idx + part) as u64;

    // 1-2. Enumerate all triangles, bucket by transcript.
    let runs: Vec<((usize, usize, usize), BitString, bool)> = (0..n * n * n)
        .into_par_iter()
        .map(|code| {
            let (a, rest) = (code / (n * n), code % (n * n));
            let (b, c) = (rest / n, rest % n);
            let ids = [part_id(0, a), part_id(1, b), part_id(2, c)];
            let run = run_on_cycle(algo, &ids);
            let rejected = run.rejects.iter().any(|&r| r);
            ((a, b, c), run.complete_transcript(), rejected)
        })
        .collect();

    let all_triangles_rejected = runs.iter().all(|&(_, _, r)| r);
    let mut buckets: FxHashMap<BitString, Vec<(usize, usize, usize)>> = FxHashMap::default();
    for (triple, t, _) in &runs {
        buckets.entry(t.clone()).or_default().push(*triple);
    }
    let transcript_classes = buckets.len();
    let (best_t, best_bucket) = buckets
        .iter()
        .max_by_key(|(_, v)| v.len())
        .map(|(t, v)| (t.clone(), v.clone()))
        .expect("at least one transcript");
    let largest_bucket = best_bucket.len();

    // 3-4. Find a K^(3)(2) inside the biggest bucket.
    let witness = find_tripartite_block(&best_bucket, n).map(|block_idx| {
        let block = [
            [part_id(0, block_idx[0][0]), part_id(0, block_idx[0][1])],
            [part_id(1, block_idx[1][0]), part_id(1, block_idx[1][1])],
            [part_id(2, block_idx[2][0]), part_id(2, block_idx[2][1])],
        ];
        // 5. Splice the hexagon u0 u1 u2 u0' u1' u2' and run on it.
        let hexagon = vec![
            block[0][0],
            block[1][0],
            block[2][0],
            block[0][1],
            block[1][1],
            block[2][1],
        ];
        let hex_run = run_on_cycle(algo, &hexagon);
        FoolingWitness {
            block,
            hexagon,
            transcript: best_t.clone(),
            bucket_size: largest_bucket,
            hexagon_rejects: hex_run.rejects,
        }
    });

    AdversaryReport {
        triangles: runs.len(),
        transcript_classes,
        largest_bucket,
        all_triangles_rejected,
        witness,
    }
}

/// Finds `{a,a'} × {b,b'} × {c,c'}` with all 8 triples present in `edges`
/// (a `K^(3)(2)` in the tripartite 3-uniform hypergraph), if one exists.
/// Indices must be `< n <= 64`.
pub fn find_tripartite_block(edges: &[(usize, usize, usize)], n: usize) -> Option<[[usize; 2]; 3]> {
    assert!(n <= 64);
    // rows[b][c] = bitset over a of present triples.
    let mut rows = vec![vec![0u64; n]; n];
    for &(a, b, c) in edges {
        rows[b][c] |= 1u64 << a;
    }
    for b0 in 0..n {
        for b1 in (b0 + 1)..n {
            for c0 in 0..n {
                for c1 in (c0 + 1)..n {
                    let common = rows[b0][c0] & rows[b0][c1] & rows[b1][c0] & rows[b1][c1];
                    if common.count_ones() >= 2 {
                        let a0 = common.trailing_zeros() as usize;
                        let a1 = (common & !(1u64 << a0)).trailing_zeros() as usize;
                        return Some([[a0, a1], [b0, b1], [c0, c1]]);
                    }
                }
            }
        }
    }
    None
}

// ---------------------------------------------------------------------------
// Concrete algorithm families
// ---------------------------------------------------------------------------

/// The natural `c`-bit digest algorithm: in one round, every node sends a
/// `c`-bit digest of its *predecessor's* identifier to its successor (and a
/// digest of its successor's id to its predecessor). In a triangle, the
/// digest a node receives from its predecessor equals the digest of its own
/// successor; the node rejects iff the check passes. Complete on triangles
/// (Claim 4.3 holds); on a hexagon it errs exactly when the adversary finds
/// digest collisions — which pigeonhole guarantees once `c < log2(n)`.
#[derive(Debug, Clone)]
pub struct IdHashAlgo {
    /// Digest width in bits (`c`).
    pub bits: usize,
}

impl IdHashAlgo {
    fn digest(&self, id: u64) -> u64 {
        // Part-stripped index (ids are 3*idx + part), then truncate: this
        // makes collisions depend only on the index, as in the paper's
        // pigeonhole step.
        (id / 3) & ((1u64 << self.bits) - 1).max(1)
    }
}

impl FoolableAlgo for IdHashAlgo {
    fn rounds(&self) -> usize {
        1
    }

    fn message(
        &self,
        view: &NodeView,
        _round: usize,
        to_succ: bool,
        _received: &Received,
    ) -> BitString {
        let id = if to_succ { view.pred_id } else { view.succ_id };
        BitString::from_uint(self.digest(id), self.bits.max(1))
    }

    fn decide(&self, view: &NodeView, received: &Received) -> bool {
        // From my predecessor I got digest(pred.pred_id); in a triangle
        // pred.pred == my succ.
        let got = received.from_pred[0].to_uint();
        got == self.digest(view.succ_id)
    }
}

/// The full-identifier algorithm (`c = log N` bits): never fooled — the
/// digest is the identity, so a hexagon never passes the triangle check.
pub fn full_id_algo(n: usize) -> IdHashAlgo {
    IdHashAlgo {
        bits: congest::bits_for_domain(n.max(2)),
    }
}

/// The always-reject algorithm: correct on the all-triangles class, sends
/// one dummy bit, and is fooled by *any* hexagon. The degenerate end of the
/// spectrum (`C = 1`).
#[derive(Debug, Clone)]
pub struct AlwaysReject;

impl FoolableAlgo for AlwaysReject {
    fn rounds(&self) -> usize {
        1
    }

    fn message(
        &self,
        _view: &NodeView,
        _round: usize,
        _to_succ: bool,
        _received: &Received,
    ) -> BitString {
        BitString::from_uint(0, 1)
    }

    fn decide(&self, _view: &NodeView, _received: &Received) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_run_is_symmetric() {
        let algo = IdHashAlgo { bits: 2 };
        let run = run_on_cycle(&algo, &[0, 1, 2]);
        assert_eq!(run.node_transcripts.len(), 3);
        assert!(run.rejects.iter().all(|&r| r), "triangles must reject");
    }

    #[test]
    fn hexagon_with_distinct_ids_accepted_by_full_algo() {
        let algo = full_id_algo(64 * 3);
        // Hexagon u0 u1 u2 u0' u1' u2' with distinct indices per part.
        let hex = [0, 1, 2, 3, 4, 5];
        let run = run_on_cycle(&algo, &hex);
        assert!(
            run.rejects.iter().all(|&r| !r),
            "full-id algorithm must accept a proper hexagon"
        );
    }

    #[test]
    fn always_reject_is_fooled_immediately() {
        let rep = run_adversary(&AlwaysReject, 4);
        assert!(rep.all_triangles_rejected);
        assert_eq!(rep.transcript_classes, 1);
        assert_eq!(rep.largest_bucket, 64);
        let w = rep.witness.expect("trivial algorithm must be fooled");
        assert!(w.hexagon_rejects.iter().any(|&r| r));
    }

    #[test]
    fn low_bit_digest_is_fooled() {
        // 16 ids per part, 2-bit digests: collisions are forced.
        let rep = run_adversary(&IdHashAlgo { bits: 2 }, 16);
        assert!(rep.all_triangles_rejected, "Claim 4.3 must hold");
        let w = rep.witness.expect("2-bit digests must be foolable at n=16");
        assert!(
            w.hexagon_rejects.iter().any(|&r| r),
            "the spliced hexagon must be (wrongly) rejected"
        );
        // The fooling hexagon is a genuine hexagon: 6 distinct ids.
        let set: std::collections::HashSet<_> = w.hexagon.iter().collect();
        assert_eq!(set.len(), 6);
    }

    #[test]
    fn full_id_algo_is_not_fooled() {
        let rep = run_adversary(&full_id_algo(3 * 8), 8);
        assert!(rep.all_triangles_rejected);
        assert!(
            rep.witness.is_none(),
            "log-n-bit digests are injective: no fooling block exists"
        );
    }

    #[test]
    fn bucket_lower_bound_holds() {
        // |largest bucket| >= n^3 / 2^{6(C+1)} with C = total bits per node
        // (here each node sends 2 messages of `bits` bits).
        let bits = 2;
        let n = 8;
        let rep = run_adversary(&IdHashAlgo { bits }, n);
        let c = 2 * bits; // bits per node per run
        let floor = (n * n * n) as f64 / 2f64.powi((6 * (c + 1)) as i32);
        assert!(
            rep.largest_bucket as f64 >= floor,
            "{} < {}",
            rep.largest_bucket,
            floor
        );
    }

    #[test]
    fn block_finder_exact() {
        // Hand-built K^(3)(2) plus noise.
        let mut edges = vec![];
        for &a in &[1usize, 3] {
            for &b in &[0usize, 2] {
                for &c in &[1usize, 2] {
                    edges.push((a, b, c));
                }
            }
        }
        edges.push((0, 0, 0));
        let block = find_tripartite_block(&edges, 4).expect("block present");
        assert_eq!(block[0], [1, 3]);
        assert_eq!(block[1], [0, 2]);
        assert_eq!(block[2], [1, 2]);
        // Remove one triple: no block remains.
        let broken: Vec<_> = edges.iter().copied().skip(1).collect();
        assert!(find_tripartite_block(&broken, 4).is_none());
    }

    #[test]
    fn erdos_density_threshold_empirical() {
        // Theorem 4.2 (r=3, l=2): dense 3-partite hypergraphs contain
        // K^(3)(2). Random dense instance must contain a block w.h.p.
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(6);
        let n = 12;
        let mut edges = vec![];
        for a in 0..n {
            for b in 0..n {
                for c in 0..n {
                    if rng.gen_bool(0.5) {
                        edges.push((a, b, c));
                    }
                }
            }
        }
        assert!(find_tripartite_block(&edges, n).is_some());
    }

    #[test]
    fn hexagon_views_match_bucket_triangles() {
        // Claim 4.4: each hexagon node's transcript equals its part's piece
        // of the bucket transcript.
        let algo = IdHashAlgo { bits: 1 };
        let rep = run_adversary(&algo, 8);
        let w = rep.witness.expect("1-bit digest is foolable");
        let hex_run = run_on_cycle(&algo, &w.hexagon);
        // Node i of the hexagon behaves like the corresponding triangle
        // node: transcripts of i and i+3 agree (same part).
        for i in 0..3 {
            assert_eq!(
                hex_run.node_transcripts[i],
                hex_run.node_transcripts[i + 3],
                "part {i} transcripts must agree across the two block rows"
            );
        }
    }
}
