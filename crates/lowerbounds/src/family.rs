//! The lower-bound family `G_{k,n}` of **Figure 2 / Definition 2**, and the
//! executable Theorem 1.2 reduction.
//!
//! The graph echoes `H_k`, but with only `2m` triangles
//! (`m = k⌈n^{1/k}⌉`) shared among `n` endpoint copies per direction:
//! endpoint copy `i` attaches to the `k` triangles in its unique k-subset
//! encoding `Q_i` (§3.2). Alice's input decides the
//! `End'_{⊤,A} × End'_{⊥,A}` edges, Bob's the B-side ones; by Lemma 3.1 a
//! copy of `H_k` appears **iff** the inputs intersect. The cut between the
//! players is `Θ(k n^{1/k})` — every triangle is "cut through" — which is
//! what makes the simulation cheap and the round bound
//! `Ω(n^{2-1/k}/(Bk))` follow.

use crate::hk::{clique_for, Role, Side};
use commlb::Party;
use graphlib::combinatorics::{subset_universe, unrank_ksubset};
use graphlib::{Graph, GraphBuilder};

/// Vertex labels of a family graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FamilyLabel {
    /// Member of anchor clique `which` (sizes 6..=10), index `idx`.
    Clique {
        /// Which clique.
        which: usize,
        /// Index within (0 = special).
        idx: usize,
    },
    /// Endpoint copy `(side, role, i)` with `i ∈ [n]`.
    Endpoint {
        /// Top/bottom.
        side: Side,
        /// A or B.
        role: Role,
        /// Copy index in `[n]`.
        copy: usize,
    },
    /// Triangle vertex `(side, j, role)` with `j ∈ [m]`.
    Triangle {
        /// Top/bottom.
        side: Side,
        /// Triangle index in `[m]`.
        tri: usize,
        /// A, B, or Mid.
        role: Role,
    },
}

/// Precomputed layout of `G_{k,n}` (everything except the input edges).
#[derive(Debug, Clone)]
pub struct FamilyLayout {
    /// The `k` parameter.
    pub k: usize,
    /// Number of endpoint copies per direction (the `[n]` of the
    /// disjointness universe `[n]²`).
    pub n_copies: usize,
    /// Triangle count per side, `m = k * ceil(n^{1/k})`.
    pub m_triangles: usize,
    /// Vertex labels.
    pub labels: Vec<FamilyLabel>,
    /// k-subset encodings `Q_i` for `i in [n]`.
    pub encodings: Vec<Vec<u64>>,
    clique_start: [usize; 5],
    endpoint_base: std::collections::HashMap<(Side, Role), usize>,
    tri_base: std::collections::HashMap<(Side, Role), usize>,
}

impl FamilyLayout {
    /// Lays out `G_{k,n}` for the given parameters.
    #[allow(clippy::needless_range_loop)] // clique index addresses a fixed array
    pub fn new(k: usize, n_copies: usize) -> Self {
        assert!(k >= 1 && n_copies >= 1);
        let m = subset_universe(n_copies, k);
        let mut labels = Vec::new();
        let mut clique_start = [0usize; 5];
        for c in 0..5 {
            clique_start[c] = labels.len();
            for idx in 0..(6 + c) {
                labels.push(FamilyLabel::Clique { which: c, idx });
            }
        }
        let mut endpoint_base = std::collections::HashMap::new();
        let mut tri_base = std::collections::HashMap::new();
        for &side in &[Side::Top, Side::Bottom] {
            for &role in &[Role::A, Role::B] {
                endpoint_base.insert((side, role), labels.len());
                for copy in 0..n_copies {
                    labels.push(FamilyLabel::Endpoint { side, role, copy });
                }
            }
            for &role in &[Role::A, Role::B, Role::Mid] {
                tri_base.insert((side, role), labels.len());
                for tri in 0..m {
                    labels.push(FamilyLabel::Triangle { side, tri, role });
                }
            }
        }
        let encodings = (0..n_copies).map(|i| unrank_ksubset(i as u64, k)).collect();
        FamilyLayout {
            k,
            n_copies,
            m_triangles: m,
            labels,
            encodings,
            clique_start,
            endpoint_base,
            tri_base,
        }
    }

    /// Total vertex count (`Θ(n)`).
    pub fn n_vertices(&self) -> usize {
        self.labels.len()
    }

    /// Index of an endpoint copy.
    pub fn endpoint(&self, side: Side, role: Role, copy: usize) -> usize {
        assert!(copy < self.n_copies);
        self.endpoint_base[&(side, role)] + copy
    }

    /// Index of a triangle vertex.
    pub fn triangle(&self, side: Side, tri: usize, role: Role) -> usize {
        assert!(tri < self.m_triangles);
        self.tri_base[&(side, role)] + tri
    }

    /// Special vertex of anchor clique `c`.
    pub fn special(&self, c: usize) -> usize {
        self.clique_start[c]
    }

    /// Builds `G_{X,Y}` from the players' pair sets.
    pub fn build(&self, x_pairs: &[(usize, usize)], y_pairs: &[(usize, usize)]) -> Graph {
        let mut b = GraphBuilder::new(self.n_vertices());
        // Clique interiors + special spine.
        for c in 0..5 {
            for i in 0..(6 + c) {
                for j in (i + 1)..(6 + c) {
                    b.add_edge(self.clique_start[c] + i, self.clique_start[c] + j);
                }
            }
        }
        for c in 0..5 {
            for d in (c + 1)..5 {
                b.add_edge(self.special(c), self.special(d));
            }
        }
        for &side in &[Side::Top, Side::Bottom] {
            // Marker attachments.
            for &role in &[Role::A, Role::B] {
                let s = self.special(clique_for(side, role));
                for copy in 0..self.n_copies {
                    b.add_edge(self.endpoint(side, role, copy), s);
                }
            }
            for &role in &[Role::A, Role::B, Role::Mid] {
                let s = self.special(clique_for(side, role));
                for t in 0..self.m_triangles {
                    b.add_edge(self.triangle(side, t, role), s);
                }
            }
            // Triangles.
            for t in 0..self.m_triangles {
                let a = self.triangle(side, t, Role::A);
                let bb = self.triangle(side, t, Role::B);
                let m = self.triangle(side, t, Role::Mid);
                b.add_edge(a, bb);
                b.add_edge(bb, m);
                b.add_edge(m, a);
            }
            // Endpoint-to-triangle wiring via the k-subset encodings.
            for &role in &[Role::A, Role::B] {
                for copy in 0..self.n_copies {
                    for &j in &self.encodings[copy] {
                        b.add_edge(
                            self.endpoint(side, role, copy),
                            self.triangle(side, j as usize, role),
                        );
                    }
                }
            }
        }
        // Input edges.
        for &(i, j) in x_pairs {
            b.add_edge(
                self.endpoint(Side::Top, Role::A, i),
                self.endpoint(Side::Bottom, Role::A, j),
            );
        }
        for &(i, j) in y_pairs {
            b.add_edge(
                self.endpoint(Side::Top, Role::B, i),
                self.endpoint(Side::Bottom, Role::B, j),
            );
        }
        b.build()
    }

    /// The §3.3 vertex partition: Alice owns the A-side endpoints and
    /// triangle A-vertices plus cliques 6 and 8; Bob the B-side plus
    /// cliques 7 and 9; the triangle middles and clique 10 are shared.
    pub fn partition(&self) -> Vec<Party> {
        self.labels
            .iter()
            .map(|l| match l {
                FamilyLabel::Clique { which: 0, .. } | FamilyLabel::Clique { which: 2, .. } => {
                    Party::Alice
                }
                FamilyLabel::Clique { which: 1, .. } | FamilyLabel::Clique { which: 3, .. } => {
                    Party::Bob
                }
                FamilyLabel::Clique { which: 4, .. } => Party::Shared,
                FamilyLabel::Endpoint { role: Role::A, .. }
                | FamilyLabel::Triangle { role: Role::A, .. } => Party::Alice,
                FamilyLabel::Endpoint { role: Role::B, .. }
                | FamilyLabel::Triangle { role: Role::B, .. } => Party::Bob,
                FamilyLabel::Triangle {
                    role: Role::Mid, ..
                } => Party::Shared,
                FamilyLabel::Endpoint {
                    role: Role::Mid, ..
                } => Party::Shared,
                FamilyLabel::Clique { .. } => Party::Shared,
            })
            .collect()
    }

    /// Lemma 3.1: `G_{X,Y}` contains `H_k` **iff** the pair sets intersect.
    /// This is the structural characterization; `verify_lemma_3_1` checks
    /// it against generic subgraph isomorphism on small instances.
    pub fn contains_hk(x_pairs: &[(usize, usize)], y_pairs: &[(usize, usize)]) -> bool {
        let xs: std::collections::HashSet<_> = x_pairs.iter().collect();
        y_pairs.iter().any(|p| xs.contains(p))
    }

    /// The theoretical cut bound `Θ(k n^{1/k})` — `3` directed charged
    /// edges per triangle pair of sides plus the `O(1)` clique spine.
    pub fn cut_bound(&self) -> usize {
        // Per triangle: A->B, A->Mid (Alice out), B->A, B->Mid (Bob out).
        4 * 2 * self.m_triangles + 24
    }
}

/// Theorem 1.2's round lower bound formula `n² / (cut · B)` given the
/// disjointness bound in bits.
pub fn implied_round_lower_bound(n_copies: usize, cut_edges: usize, bandwidth_bits: usize) -> f64 {
    let disj_bits = commlb::disjointness_lower_bound_bits(n_copies * n_copies);
    disj_bits / ((cut_edges.max(1) * bandwidth_bits.max(1)) as f64)
}

/// The §3.3 reduction packaged as an actual two-party protocol: Alice and
/// Bob turn their `[n]²` disjointness inputs into `G_{X,Y}` and simulate a
/// CONGEST `H_k`-detection algorithm, exchanging only cut-crossing traffic.
/// The protocol's output is "disjoint?" and its cost is exactly the
/// simulation cost — the inequality chain of Theorem 1.2, executable.
pub struct HkDisjointnessProtocol {
    layout: FamilyLayout,
    seed: u64,
}

impl HkDisjointnessProtocol {
    /// A protocol for the universe `[n_copies]²` using `H_k`.
    pub fn new(k: usize, n_copies: usize, seed: u64) -> Self {
        HkDisjointnessProtocol {
            layout: FamilyLayout::new(k, n_copies),
            seed,
        }
    }

    fn pairs_from_bits(&self, bits: &[bool]) -> Vec<(usize, usize)> {
        let n = self.layout.n_copies;
        assert_eq!(bits.len(), n * n, "input must cover the [n]² universe");
        bits.iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| (i / n, i % n))
            .collect()
    }
}

impl commlb::TwoPartyProtocol for HkDisjointnessProtocol {
    fn run(&mut self, x: &[bool], y: &[bool]) -> commlb::ProtocolResult {
        let x_pairs = self.pairs_from_bits(x);
        let y_pairs = self.pairs_from_bits(y);
        let g = self.layout.build(&x_pairs, &y_pairs);
        let parts = self.layout.partition();
        let hk = crate::hk::HkGraph::build(self.layout.k).graph;
        let bw = congest::Bandwidth::Bits(2 * congest::bits_for_domain(g.n()) + 2);
        let (outcome, sim) = commlb::simulate_two_party(
            &g,
            &parts,
            bw,
            16 * (g.n() + g.m() + 4),
            self.seed,
            move |_| subgraph_detection::generic::GatherNode::new(hk.clone()),
        )
        .expect("simulation engine");
        commlb::ProtocolResult {
            // DISJ(X, Y) = 1 iff no H_k appears (Lemma 3.1).
            output: !outcome.network_rejects(),
            bits_exchanged: sim.bits_exchanged,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hk::HkGraph;
    use graphlib::iso;

    #[test]
    fn layout_size_is_linear() {
        let lay = FamilyLayout::new(2, 9);
        // 40 clique + 4n endpoints + 6m triangles.
        let m = lay.m_triangles;
        assert_eq!(m, 2 * 3); // k * ceil(sqrt(9))
        assert_eq!(lay.n_vertices(), 40 + 4 * 9 + 6 * m);
    }

    #[test]
    fn encodings_are_distinct_k_subsets() {
        let lay = FamilyLayout::new(3, 20);
        let mut seen = std::collections::HashSet::new();
        for e in &lay.encodings {
            assert_eq!(e.len(), 3);
            assert!(e.iter().all(|&x| (x as usize) < lay.m_triangles));
            assert!(seen.insert(e.clone()));
        }
    }

    #[test]
    fn property_1_diameter_3() {
        let lay = FamilyLayout::new(2, 6);
        let g = lay.build(&[], &[]);
        assert_eq!(graphlib::diameter::diameter(&g), Some(3));
        let g2 = lay.build(&[(0, 3), (2, 2)], &[(1, 1)]);
        assert_eq!(graphlib::diameter::diameter(&g2), Some(3));
    }

    #[test]
    fn lemma_3_1_characterization() {
        assert!(!FamilyLayout::contains_hk(&[(0, 1)], &[(1, 0)]));
        assert!(FamilyLayout::contains_hk(&[(0, 1), (2, 2)], &[(2, 2)]));
        assert!(!FamilyLayout::contains_hk(&[], &[(0, 0)]));
    }

    /// Lemma 3.1 against generic VF2 on the smallest instances: the
    /// characterization and true subgraph containment must agree.
    #[test]
    fn lemma_3_1_matches_vf2_small() {
        let k = 1;
        let lay = FamilyLayout::new(k, 2);
        let hk = HkGraph::build(k);
        type PairSet = Vec<(usize, usize)>;
        let cases: Vec<(PairSet, PairSet)> = vec![
            (vec![], vec![]),
            (vec![(0, 0)], vec![]),
            (vec![(0, 0)], vec![(0, 0)]),
            (vec![(0, 1)], vec![(1, 0)]),
            (vec![(0, 1), (1, 0)], vec![(0, 1)]),
        ];
        for (x, y) in cases {
            let g = lay.build(&x, &y);
            let expected = FamilyLayout::contains_hk(&x, &y);
            let actual = iso::contains_subgraph(&hk.graph, &g);
            assert_eq!(actual, expected, "x={x:?} y={y:?}");
        }
    }

    #[test]
    fn partition_separates_inputs() {
        // Alice's input edges must be internal to Alice's part, Bob's to
        // Bob's — that is what makes the simulation sound.
        let lay = FamilyLayout::new(2, 5);
        let parts = lay.partition();
        for copy in 0..5 {
            for &side in &[Side::Top, Side::Bottom] {
                assert_eq!(parts[lay.endpoint(side, Role::A, copy)], Party::Alice);
                assert_eq!(parts[lay.endpoint(side, Role::B, copy)], Party::Bob);
            }
        }
    }

    #[test]
    fn cut_grows_like_k_n_to_1_over_k() {
        // Doubling n for k=2 should grow the cut like sqrt: compare m.
        let small = FamilyLayout::new(2, 25);
        let large = FamilyLayout::new(2, 100);
        assert_eq!(small.m_triangles, 2 * 5);
        assert_eq!(large.m_triangles, 2 * 10);
        assert!(large.cut_bound() < 2 * small.cut_bound() + 48);
    }

    #[test]
    fn measured_cut_matches_bound() {
        use congest::{Bandwidth, Decision, Inbox, NodeContext, Outbox, Outgoing};
        use rand_chacha::ChaCha8Rng;

        struct OneShot {
            done: bool,
        }
        impl congest::NodeAlgorithm for OneShot {
            type Msg = u8;
            fn init(&mut self, _c: &NodeContext, _r: &mut ChaCha8Rng) -> Outbox<u8> {
                vec![Outgoing::Broadcast(1)]
            }
            fn on_round(
                &mut self,
                _c: &NodeContext,
                _i: &Inbox<u8>,
                _r: &mut ChaCha8Rng,
            ) -> Outbox<u8> {
                self.done = true;
                Vec::new()
            }
            fn halted(&self) -> bool {
                self.done
            }
            fn decision(&self) -> Decision {
                Decision::Accept
            }
        }

        let lay = FamilyLayout::new(2, 9);
        let g = lay.build(&[(0, 1)], &[(2, 2)]);
        let parts = lay.partition();
        let (_, rep) = commlb::simulate_two_party(&g, &parts, Bandwidth::Bits(8), 4, 0, |_| {
            OneShot { done: false }
        })
        .unwrap();
        // The actual directed cut must be within the Θ(k n^{1/k}) bound.
        assert!(
            rep.cut_size() <= lay.cut_bound(),
            "{} > {}",
            rep.cut_size(),
            lay.cut_bound()
        );
        assert!(rep.cut_size() >= 6 * lay.m_triangles);
    }

    #[test]
    fn hk_protocol_solves_disjointness() {
        use commlb::TwoPartyProtocol;
        let nc = 6;
        let mut proto = HkDisjointnessProtocol::new(2, nc, 1);
        let mut inst = commlb::DisjointnessInstance::new(nc);
        inst.add_x(1, 2);
        inst.add_y(2, 1);
        let r = proto.run(&inst.x, &inst.y);
        assert!(r.output, "disjoint inputs must output 1");
        assert!(r.bits_exchanged > 0);

        inst.add_y(1, 2); // now intersecting
        let r2 = proto.run(&inst.x, &inst.y);
        assert!(!r2.output, "intersecting inputs must output 0");
    }

    #[test]
    fn implied_bound_shrinks_with_bandwidth() {
        let a = implied_round_lower_bound(100, 50, 8);
        let b = implied_round_lower_bound(100, 50, 16);
        assert!((a / b - 2.0).abs() < 1e-9);
    }
}
