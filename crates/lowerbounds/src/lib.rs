//! # lowerbounds — the paper's impossibility results, executable
//!
//! Each lower bound of *"Possibilities and Impossibilities for Distributed
//! Subgraph Detection"* (SPAA 2018) is built as a runnable construction:
//!
//! * [`hk`] + [`family`] — **Theorem 1.2** (Figures 1–2): the graph `H_k`,
//!   the family `G_{k,n}`, Lemma 3.1, the player partition, and the
//!   disjointness-reduction cost accounting.
//! * [`bipartite`] — the §3.4 bipartite variant (skeleton + bound; see the
//!   module docs for the substitution note).
//! * [`fooling`] — **Theorem 4.1**: transcripts, the Erdős `K^(3)(2)`
//!   block finder, and the triangle→hexagon splicing adversary that fools
//!   any concrete deterministic algorithm with `C = o(log n)` bits.
//! * [`template`] — **Theorem 5.1** (Figure 3): the μ distribution over the
//!   template graph, detection-error and mutual-information measurements.
//! * [`listing`] — **Lemma 1.3** and the congested-clique `K_s` listing
//!   algorithm matching the `Ω̃(n^{1-2/s})` bound.

#![warn(missing_docs)]

pub mod bipartite;
pub mod family;
pub mod fooling;
pub mod hk;
pub mod listing;
pub mod template;

pub use family::{implied_round_lower_bound, FamilyLabel, FamilyLayout};
pub use fooling::{run_adversary, AdversaryReport, FoolableAlgo, IdHashAlgo};
pub use hk::{HkGraph, HkLabel, Role, Side};
pub use listing::{clique_count_ratio, list_cliques_congested, ListingReport};
pub use template::{detection_error, information_about_xbc, sample, TemplateSample};
