//! **Lemma 1.3** and `K_s` listing in the congested clique (§1.1).
//!
//! * [`clique_count_ratio`] checks the counting lemma: any graph with `m`
//!   edges has at most `O(m^{s/2})` copies of `K_s` (the generalization of
//!   Rivin's triangle bound the paper proves for its `Ω̃(n^{1-2/s})`
//!   listing lower bound).
//! * [`list_cliques_congested`] implements the matching *upper* bound: the
//!   Dolev–Lenzen–Peled partition scheme generalized to `s`. Vertices are
//!   split into `g = ⌈n^{1/s}⌉` groups; each size-`s` group-multiset gets a
//!   handler node, which receives every edge whose endpoint groups it
//!   contains (via two-phase Valiant routing so per-link load stays
//!   balanced) and lists the cliques whose group multiset is exactly its
//!   own. With `B = Θ(log n)` this takes `Θ(n^{1-2/s})` rounds — the
//!   measured counterpart of the paper's lower bound.

use congest::cliquemodel::{CliqueAlgorithm, CliqueContext};
use congest::{bits_for_domain, BitSize};
use congest::{SimError, Simulation};
use graphlib::combinatorics::ceil_root;
use graphlib::{FxHashMap, Graph, GraphBuilder};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Lemma 1.3: returns `(count of K_s, m^{s/2}, ratio)`.
pub fn clique_count_ratio(g: &Graph, s: usize) -> (u64, f64, f64) {
    let count = graphlib::cliques::count_ksub(g, s);
    let bound = (g.m() as f64).powf(s as f64 / 2.0);
    let ratio = if bound > 0.0 {
        count as f64 / bound
    } else if count == 0 {
        0.0
    } else {
        f64::INFINITY
    };
    (count, bound, ratio)
}

/// The paper's listing round bound `n^{1-2/s}` (shape only).
pub fn listing_round_bound(n: usize, s: usize) -> f64 {
    (n as f64).powf(1.0 - 2.0 / s as f64)
}

/// All non-decreasing `s`-tuples over `0..groups` (group multisets).
pub fn enumerate_tuples(groups: usize, s: usize) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    let mut cur = vec![0u8; s];
    fn rec(out: &mut Vec<Vec<u8>>, cur: &mut Vec<u8>, pos: usize, min: u8, groups: u8) {
        if pos == cur.len() {
            out.push(cur.clone());
            return;
        }
        for v in min..groups {
            cur[pos] = v;
            rec(out, cur, pos + 1, v, groups);
        }
    }
    rec(&mut out, &mut cur, 0, 0, groups as u8);
    out
}

/// Whether the multiset `pair` (two groups, possibly equal) is contained in
/// the non-decreasing `tuple`.
fn tuple_contains_pair(tuple: &[u8], a: u8, b: u8) -> bool {
    if a == b {
        tuple.iter().filter(|&&x| x == a).count() >= 2
    } else {
        tuple.contains(&a) && tuple.contains(&b)
    }
}

/// A routed edge message: `(a, b)` endpoints with the final handler; during
/// phase 1 it travels via a random intermediate.
#[derive(Debug, Clone, Copy)]
pub struct EdgeMsg {
    a: u32,
    b: u32,
    handler: u32,
    bits: u32,
}

impl BitSize for EdgeMsg {
    fn bit_size(&self) -> usize {
        self.bits as usize
    }
}

/// Precomputed per-node routing plan (what each node injects in phase 1).
#[derive(Debug, Clone, Default)]
struct NodePlan {
    /// Messages keyed by phase-1 intermediate.
    phase1: FxHashMap<usize, Vec<EdgeMsg>>,
}

/// The generalized DLP listing node.
pub struct ListingNode {
    s: usize,
    /// My handler tuples (group multisets assigned to me).
    my_tuples: Vec<Vec<u8>>,
    group_of: std::sync::Arc<Vec<u8>>,
    plan: NodePlan,
    p1_rounds: usize,
    p2_rounds: usize,
    /// Phase-2 queues: messages received in phase 1, keyed by handler.
    relay: FxHashMap<usize, Vec<EdgeMsg>>,
    /// Edges received as handler.
    received: Vec<(u32, u32)>,
    output: Vec<Vec<u32>>,
    done: bool,
}

impl CliqueAlgorithm for ListingNode {
    type Msg = EdgeMsg;
    type Output = Vec<Vec<u32>>;

    fn init(&mut self, _ctx: &CliqueContext, _rng: &mut ChaCha8Rng) -> Vec<(u32, EdgeMsg)> {
        self.pop_phase1()
    }

    fn on_round(
        &mut self,
        ctx: &CliqueContext,
        inbox: &[(u32, EdgeMsg)],
        _rng: &mut ChaCha8Rng,
    ) -> Vec<(u32, EdgeMsg)> {
        for &(_, m) in inbox {
            if ctx.round <= self.p1_rounds {
                // Phase-1 arrival: relay toward the handler in phase 2 —
                // unless we *are* the handler.
                if m.handler as usize == ctx.index {
                    self.received.push((m.a, m.b));
                } else {
                    self.relay.entry(m.handler as usize).or_default().push(m);
                }
            } else {
                self.received.push((m.a, m.b));
            }
        }
        let out = if ctx.round < self.p1_rounds {
            self.pop_phase1()
        } else if ctx.round <= self.p1_rounds + self.p2_rounds {
            self.pop_phase2()
        } else {
            Vec::new()
        };
        if ctx.round > self.p1_rounds + self.p2_rounds {
            self.finalize(ctx);
            self.done = true;
        }
        out
    }

    fn halted(&self) -> bool {
        self.done
    }

    fn output(&self) -> Vec<Vec<u32>> {
        self.output.clone()
    }
}

impl ListingNode {
    fn pop_phase1(&mut self) -> Vec<(u32, EdgeMsg)> {
        let mut out = Vec::new();
        self.plan.phase1.retain(|&dest, queue| {
            if let Some(m) = queue.pop() {
                out.push((dest as u32, m));
            }
            !queue.is_empty()
        });
        out
    }

    fn pop_phase2(&mut self) -> Vec<(u32, EdgeMsg)> {
        let mut out = Vec::new();
        self.relay.retain(|&dest, queue| {
            if let Some(m) = queue.pop() {
                out.push((dest as u32, m));
            }
            !queue.is_empty()
        });
        out
    }

    fn finalize(&mut self, ctx: &CliqueContext) {
        if self.my_tuples.is_empty() {
            return;
        }
        // Include my own incident edges if I handle a tuple containing my
        // group (they were never routed to me by myself — routing skips
        // self-sends — so add them locally).
        let mut edges: Vec<(u32, u32)> = self.received.clone();
        let me = ctx.index as u32;
        let my_group = self.group_of[ctx.index];
        for &v in &ctx.input_neighbors {
            let gpair = (
                my_group.min(self.group_of[v as usize]),
                my_group.max(self.group_of[v as usize]),
            );
            if self
                .my_tuples
                .iter()
                .any(|t| tuple_contains_pair(t, gpair.0, gpair.1))
            {
                edges.push((me.min(v), me.max(v)));
            }
        }
        // No pre-sort/dedup of `edges`: GraphBuilder::build dedups, and the
        // vertex compaction sorts its own list.
        let mut verts: Vec<u32> = edges.iter().flat_map(|&(a, b)| [a, b]).collect();
        verts.sort_unstable();
        verts.dedup();
        let idx = |x: u32| verts.binary_search(&x).unwrap();
        let mut b = GraphBuilder::new(verts.len());
        for &(u, v) in &edges {
            b.add_edge(idx(u), idx(v));
        }
        let local = b.build();
        for clique in graphlib::cliques::list_ksub(&local, self.s, usize::MAX) {
            let global: Vec<u32> = clique.iter().map(|&c| verts[c as usize]).collect();
            let mut groups: Vec<u8> = global.iter().map(|&v| self.group_of[v as usize]).collect();
            groups.sort_unstable();
            if self.my_tuples.contains(&groups) {
                self.output.push(global);
            }
        }
    }
}

/// Result of a congested-clique listing run.
#[derive(Debug, Clone)]
pub struct ListingReport {
    /// All listed cliques (deduplicated, sorted vertex sets).
    pub cliques: Vec<Vec<u32>>,
    /// Rounds used.
    pub rounds: usize,
    /// Total bits.
    pub total_bits: u64,
    /// The shape bound `n^{1-2/s}`.
    pub round_bound: f64,
    /// Number of groups used.
    pub groups: usize,
}

/// Lists all `K_s` in `g` over the congested clique.
pub fn list_cliques_congested(g: &Graph, s: usize, seed: u64) -> Result<ListingReport, SimError> {
    assert!(s >= 3, "listing is for s >= 3");
    let n = g.n();
    assert!(n >= 2);
    let groups = (ceil_root(n as u64, s as u32) as usize).max(1);
    let group_of: std::sync::Arc<Vec<u8>> =
        std::sync::Arc::new((0..n).map(|v| (v % groups) as u8).collect());
    let tuples = enumerate_tuples(groups, s);
    // Handler assignment: tuple t -> node t % n.
    let handler_of_tuple: Vec<usize> = (0..tuples.len()).map(|t| t % n).collect();
    let mut tuples_of_node: Vec<Vec<Vec<u8>>> = vec![Vec::new(); n];
    for (t, tuple) in tuples.iter().enumerate() {
        tuples_of_node[handler_of_tuple[t]].push(tuple.clone());
    }

    // Central routing plan (each node could compute its own part locally:
    // it only needs its incident edges, the public grouping, and its own
    // randomness).
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let msg_bits = (2 * bits_for_domain(n.max(2)) + bits_for_domain(n.max(2))) as u32;
    let mut plans: Vec<NodePlan> = vec![NodePlan::default(); n];
    let mut p1_load: FxHashMap<(usize, usize), usize> = FxHashMap::default();
    for (u, v) in g.edges() {
        let (gu, gv) = (group_of[u as usize], group_of[v as usize]);
        let (ga, gb) = (gu.min(gv), gu.max(gv));
        for (t, tuple) in tuples.iter().enumerate() {
            if tuple_contains_pair(tuple, ga, gb) {
                let handler = handler_of_tuple[t];
                let src = u as usize; // min endpoint sends
                if handler == src {
                    // Self-handled: counted locally in finalize().
                    continue;
                }
                // Random intermediate distinct from the source.
                let mut inter = rng.gen_range(0..n);
                if inter == src {
                    inter = (inter + 1) % n;
                }
                let msg = EdgeMsg {
                    a: u,
                    b: v,
                    handler: handler as u32,
                    bits: msg_bits,
                };
                plans[src].phase1.entry(inter).or_default().push(msg);
                *p1_load.entry((src, inter)).or_default() += 1;
            }
        }
    }
    let p1_rounds = p1_load.values().copied().max().unwrap_or(0);
    // Phase-2 load: per (intermediate, handler) pair.
    let mut p2_load: FxHashMap<(usize, usize), usize> = FxHashMap::default();
    for (src, plan) in plans.iter().enumerate() {
        let _ = src;
        for (&inter, q) in &plan.phase1 {
            for m in q {
                if m.handler as usize != inter {
                    *p2_load.entry((inter, m.handler as usize)).or_default() += 1;
                }
            }
        }
    }
    let p2_rounds = p2_load.values().copied().max().unwrap_or(0);

    let plans = std::sync::Arc::new(plans);
    let tuples_of_node = std::sync::Arc::new(tuples_of_node);
    let group_arc = group_of.clone();
    let out = Simulation::on(g)
        .bandwidth_bits(msg_bits as usize)
        .max_rounds(p1_rounds + p2_rounds + 3)
        .seed(seed)
        .run_clique(|v| ListingNode {
            s,
            my_tuples: tuples_of_node[v].clone(),
            group_of: group_arc.clone(),
            plan: plans[v].clone(),
            p1_rounds,
            p2_rounds,
            relay: FxHashMap::default(),
            received: Vec::new(),
            output: Vec::new(),
            done: false,
        })?
        .into_clique();

    let mut cliques: Vec<Vec<u32>> = out.outputs.into_iter().flatten().collect();
    cliques.sort();
    cliques.dedup();
    Ok(ListingReport {
        cliques,
        rounds: out.stats.rounds,
        total_bits: out.stats.total_bits,
        round_bound: listing_round_bound(n, s),
        groups,
    })
}

/// The executable form of the paper's `Ω̃(n^{1-2/s})` listing
/// lower-bound argument (the Izumi–Le Gall-style counting step powered by
/// Lemma 1.3): after `R` rounds a node has received at most `R·(n-1)·B`
/// bits, hence knows at most `m_v = R(n-1)B / (2 log n)` edges, hence — by
/// Lemma 1.3 — can output at most `m_v^{s/2}` cliques. All `n` nodes
/// together must output every one of `clique_count` copies, so
///
/// `n · (R(n-1)B / (2 log n))^{s/2} >= clique_count`,
///
/// which this function solves for the minimum `R`. For dense graphs
/// (`clique_count = Θ(n^s)`) the bound is `Ω̃(n^{1-2/s})` — and any
/// *measured* run of [`list_cliques_congested`] must satisfy
/// `rounds >= certificate` (verified in tests).
pub fn listing_lower_bound_certificate(
    n: usize,
    s: usize,
    clique_count: u64,
    bandwidth_bits: usize,
) -> f64 {
    if clique_count == 0 || n <= 1 {
        return 0.0;
    }
    let per_node = clique_count as f64 / n as f64;
    // m_v >= per_node^{2/s}; R = m_v * 2 log n / ((n-1) B).
    let m_v = per_node.powf(2.0 / s as f64);
    let edge_bits = 2.0 * (n as f64).log2();
    m_v * edge_bits / (((n - 1) * bandwidth_bits.max(1)) as f64)
}

/// `K_s` *detection* in the congested clique, via the listing scheme
/// (detection inherits the `O(n^{1-2/s})` rounds; the introduction's `K_s`
/// upper-bound discussion).
pub fn detect_clique_congested(
    g: &Graph,
    s: usize,
    seed: u64,
) -> Result<(bool, ListingReport), SimError> {
    let rep = list_cliques_congested(g, s, seed)?;
    Ok((!rep.cliques.is_empty(), rep))
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphlib::generators;

    #[test]
    fn lemma_1_3_ratio_bounded_on_cliques() {
        // K_m: count = C(m, s), edges = C(m, 2); ratio stays below
        // 2^{s/2}/s! < 1 for s >= 3.
        for m in [6usize, 10, 14] {
            for s in 3..=5 {
                let (_, _, ratio) = clique_count_ratio(&generators::clique(m), s);
                assert!(ratio <= 1.0, "m={m} s={s} ratio={ratio}");
            }
        }
    }

    #[test]
    fn lemma_1_3_on_random_graphs() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..4 {
            let g = generators::gnp(40, 0.3, &mut rng);
            for s in 3..=4 {
                let (_, _, ratio) = clique_count_ratio(&g, s);
                assert!(ratio <= 1.0, "s={s} ratio={ratio}");
            }
        }
    }

    #[test]
    fn tuple_enumeration_counts() {
        // Multisets of size s from g groups: C(g+s-1, s).
        assert_eq!(enumerate_tuples(4, 3).len(), 20);
        assert_eq!(enumerate_tuples(2, 2).len(), 3);
        let ts = enumerate_tuples(3, 2);
        assert!(ts.contains(&vec![0, 0]) && ts.contains(&vec![1, 2]));
    }

    #[test]
    fn pair_containment() {
        assert!(tuple_contains_pair(&[0, 1, 2], 0, 2));
        assert!(!tuple_contains_pair(&[0, 1, 2], 0, 3));
        assert!(tuple_contains_pair(&[1, 1, 2], 1, 1));
        assert!(!tuple_contains_pair(&[0, 1, 2], 1, 1));
    }

    #[test]
    fn lists_triangles_exactly() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let g = generators::gnp(24, 0.3, &mut rng);
        let rep = list_cliques_congested(&g, 3, 1).unwrap();
        let truth = graphlib::cliques::list_ksub(&g, 3, usize::MAX);
        let mut truth_sorted = truth;
        truth_sorted.sort();
        assert_eq!(rep.cliques, truth_sorted);
    }

    #[test]
    fn lists_k4_exactly() {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let g = generators::gnp(20, 0.45, &mut rng);
        let rep = list_cliques_congested(&g, 4, 2).unwrap();
        let mut truth = graphlib::cliques::list_ksub(&g, 4, usize::MAX);
        truth.sort();
        assert_eq!(rep.cliques, truth);
        assert!(!rep.cliques.is_empty(), "test graph should contain K4s");
    }

    #[test]
    fn empty_graph_lists_nothing() {
        let g = Graph::empty(8);
        let rep = list_cliques_congested(&g, 3, 3).unwrap();
        assert!(rep.cliques.is_empty());
        // No routed messages: only the bookkeeping round runs.
        assert!(rep.rounds <= 1, "rounds = {}", rep.rounds);
    }

    #[test]
    fn dense_graph_rounds_scale_sublinearly() {
        // On K_n the listing runs in o(n) rounds (the whole point).
        let g = generators::clique(48);
        let rep = list_cliques_congested(&g, 3, 4).unwrap();
        assert_eq!(
            rep.cliques.len() as u64,
            graphlib::cliques::count_ksub(&g, 3)
        );
        assert!(
            (rep.rounds as f64) < 0.75 * g.n() as f64,
            "rounds {} should be well below n {}",
            rep.rounds,
            g.n()
        );
    }

    #[test]
    fn certificate_never_exceeds_measured_rounds() {
        // The information-counting lower bound must hold for our own
        // algorithm's measured runs — on a dense graph where it is
        // non-trivial.
        let g = generators::clique(48);
        for s in [3usize, 4] {
            let rep = list_cliques_congested(&g, s, 7).unwrap();
            let cert = listing_lower_bound_certificate(
                g.n(),
                s,
                rep.cliques.len() as u64,
                congest::bits_for_domain(g.n()),
            );
            assert!(cert > 0.0);
            assert!(
                rep.rounds as f64 >= cert,
                "s={s}: measured {} < certificate {cert}",
                rep.rounds
            );
        }
    }

    #[test]
    fn certificate_scales_like_n_to_1_minus_2_over_s() {
        // On K_n (clique_count ~ n^s / s!), the certificate grows with the
        // paper's exponent: quadrupling n multiplies the s=3 bound by
        // about 4^{1/3} (up to the log factors).
        let b = 10;
        let c1 = listing_lower_bound_certificate(256, 3, binom(256, 3), b);
        let c2 = listing_lower_bound_certificate(1024, 3, binom(1024, 3), b);
        let ratio = c2 / c1;
        let ideal = 4f64.powf(1.0 / 3.0);
        assert!(
            ratio > ideal * 0.5 && ratio < ideal * 2.5,
            "ratio {ratio} vs ideal {ideal}"
        );
    }

    fn binom(n: u64, k: u64) -> u64 {
        let mut r = 1u64;
        for i in 0..k {
            r = r * (n - i) / (i + 1);
        }
        r
    }

    #[test]
    fn detection_via_listing() {
        let g = generators::clique(5).disjoint_union(&generators::cycle(6));
        let (found, _) = detect_clique_congested(&g, 4, 1).unwrap();
        assert!(found);
        let (found5, _) = detect_clique_congested(&generators::cycle(9), 3, 1).unwrap();
        assert!(!found5);
    }

    #[test]
    fn round_bound_shape() {
        assert!((listing_round_bound(1000, 3) - 1000f64.powf(1.0 / 3.0)).abs() < 1e-9);
        assert!(listing_round_bound(1000, 4) > listing_round_bound(1000, 3));
    }
}
