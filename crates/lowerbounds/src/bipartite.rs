//! The §3.4 bipartite variant: superlinear lower bounds for *bipartite*
//! subgraphs.
//!
//! The paper proves that for any `s, k > 1` there is a bipartite graph
//! `H_{s,k}` of size `Θ((s!)² k)` whose detection requires
//! `Ω(n^{2-1/k-1/s}/(Bk))` rounds. The full gadget construction — the
//! bipartite replacement for the triangles that forces any embedding to use
//! two endpoints from each player's side — appears only in the full version
//! of the paper (the body gives a sketch).
//!
//! **Substitution note (see DESIGN.md):** we implement the *skeleton* the
//! sketch describes — the `G_{X,Y}`-style family with each triangle replaced
//! by a bipartite 4-cycle gadget (the middle vertex split in two), degree-`k`
//! endpoints wired by the same k-subset encoding, and no anchor cliques
//! (which are non-bipartite and hence unavailable) — and we measure the
//! quantities the theorem's *reduction* relies on: the skeleton `H` is
//! bipartite, the family has the same `Θ(k n^{1/k})` player cut, and the
//! intended embedding appears exactly when the inputs intersect. The
//! embedding-*rigidity* part (no unintended copies) is exactly what the
//! full version's `(s!)²`-sized gadget buys and is not claimed here; the
//! bound itself is exposed as [`bipartite_round_bound`].

use crate::hk::{Role, Side};
use commlb::Party;
use graphlib::combinatorics::{subset_universe, unrank_ksubset};
use graphlib::{Graph, GraphBuilder};

/// The §3.4 round lower bound `n^{2-1/k-1/s} / (B k)` (shape).
pub fn bipartite_round_bound(n: usize, s: usize, k: usize, bandwidth: usize) -> f64 {
    (n as f64).powf(2.0 - 1.0 / k as f64 - 1.0 / s as f64) / (bandwidth.max(1) as f64 * k as f64)
}

/// The bipartite skeleton of `H_{s,k}`: two copies (top/bottom) of a body
/// with `k` 4-cycle gadgets `A_i – M_i – B_i – M'_i – A_i`, endpoints `A`
/// (joined to every `A_i`) and `B` (joined to every `B_i`), plus the two
/// top↔bottom endpoint edges.
#[derive(Debug, Clone)]
pub struct BipartiteSkeleton {
    /// The graph.
    pub graph: Graph,
    /// Endpoint vertex indices `(side, role)` in order
    /// `(⊤,A), (⊤,B), (⊥,A), (⊥,B)`.
    pub endpoints: [usize; 4],
    /// `k`.
    pub k: usize,
}

impl BipartiteSkeleton {
    /// Builds the skeleton for `k >= 1`.
    pub fn build(k: usize) -> Self {
        assert!(k >= 1);
        // Per side: endpoint A, endpoint B, then k gadgets of 4 vertices.
        let per_side = 2 + 4 * k;
        let mut b = GraphBuilder::new(2 * per_side);
        let idx = |side: usize, local: usize| side * per_side + local;
        for side in 0..2 {
            let (ea, eb) = (idx(side, 0), idx(side, 1));
            for i in 0..k {
                let a = idx(side, 2 + 4 * i);
                let m1 = idx(side, 2 + 4 * i + 1);
                let bb = idx(side, 2 + 4 * i + 2);
                let m2 = idx(side, 2 + 4 * i + 3);
                b.add_edge(a, m1);
                b.add_edge(m1, bb);
                b.add_edge(bb, m2);
                b.add_edge(m2, a);
                b.add_edge(ea, a);
                b.add_edge(eb, bb);
            }
        }
        // Cross edges.
        b.add_edge(idx(0, 0), idx(1, 0));
        b.add_edge(idx(0, 1), idx(1, 1));
        BipartiteSkeleton {
            graph: b.build(),
            endpoints: [idx(0, 0), idx(0, 1), idx(1, 0), idx(1, 1)],
            k,
        }
    }
}

/// The bipartite family layout: like `FamilyLayout` but with 4-cycle
/// gadgets in place of triangles (middles `M`/`M'` shared between the
/// players).
#[derive(Debug, Clone)]
pub struct BipartiteFamily {
    /// `k`.
    pub k: usize,
    /// Endpoint copies per direction.
    pub n_copies: usize,
    /// Gadget count per side (`m = k⌈n^{1/k}⌉`).
    pub m_gadgets: usize,
    /// k-subset encodings.
    pub encodings: Vec<Vec<u64>>,
}

impl BipartiteFamily {
    /// Lays out the family.
    pub fn new(k: usize, n_copies: usize) -> Self {
        let m = subset_universe(n_copies, k);
        BipartiteFamily {
            k,
            n_copies,
            m_gadgets: m,
            encodings: (0..n_copies).map(|i| unrank_ksubset(i as u64, k)).collect(),
        }
    }

    /// Vertex index layout: per side `S ∈ {0=⊤, 1=⊥}`:
    /// `n` A-endpoints, `n` B-endpoints, then `m` gadgets × (A, M, B, M').
    fn side_size(&self) -> usize {
        2 * self.n_copies + 4 * self.m_gadgets
    }

    /// Endpoint vertex index.
    pub fn endpoint(&self, side: Side, role: Role, copy: usize) -> usize {
        let s = if side == Side::Top { 0 } else { 1 };
        let base = s * self.side_size();
        match role {
            Role::A => base + copy,
            Role::B => base + self.n_copies + copy,
            Role::Mid => panic!("endpoints are A or B"),
        }
    }

    /// Gadget vertex index: `which ∈ 0..4` = (A, M, B, M').
    pub fn gadget(&self, side: Side, j: usize, which: usize) -> usize {
        let s = if side == Side::Top { 0 } else { 1 };
        s * self.side_size() + 2 * self.n_copies + 4 * j + which
    }

    /// Total vertices.
    pub fn n_vertices(&self) -> usize {
        2 * self.side_size()
    }

    /// Builds `G_{X,Y}`.
    pub fn build(&self, x_pairs: &[(usize, usize)], y_pairs: &[(usize, usize)]) -> Graph {
        let mut b = GraphBuilder::new(self.n_vertices());
        for &side in &[Side::Top, Side::Bottom] {
            for j in 0..self.m_gadgets {
                let a = self.gadget(side, j, 0);
                let m1 = self.gadget(side, j, 1);
                let bb = self.gadget(side, j, 2);
                let m2 = self.gadget(side, j, 3);
                b.add_edge(a, m1);
                b.add_edge(m1, bb);
                b.add_edge(bb, m2);
                b.add_edge(m2, a);
            }
            for copy in 0..self.n_copies {
                for &j in &self.encodings[copy] {
                    b.add_edge(
                        self.endpoint(side, Role::A, copy),
                        self.gadget(side, j as usize, 0),
                    );
                    b.add_edge(
                        self.endpoint(side, Role::B, copy),
                        self.gadget(side, j as usize, 2),
                    );
                }
            }
        }
        for &(i, j) in x_pairs {
            b.add_edge(
                self.endpoint(Side::Top, Role::A, i),
                self.endpoint(Side::Bottom, Role::A, j),
            );
        }
        for &(i, j) in y_pairs {
            b.add_edge(
                self.endpoint(Side::Top, Role::B, i),
                self.endpoint(Side::Bottom, Role::B, j),
            );
        }
        b.build()
    }

    /// The player partition: A-endpoints and gadget A-vertices are Alice's,
    /// B-side Bob's, gadget middles shared.
    pub fn partition(&self) -> Vec<Party> {
        let mut parts = vec![Party::Shared; self.n_vertices()];
        for &side in &[Side::Top, Side::Bottom] {
            for copy in 0..self.n_copies {
                parts[self.endpoint(side, Role::A, copy)] = Party::Alice;
                parts[self.endpoint(side, Role::B, copy)] = Party::Bob;
            }
            for j in 0..self.m_gadgets {
                parts[self.gadget(side, j, 0)] = Party::Alice;
                parts[self.gadget(side, j, 2)] = Party::Bob;
            }
        }
        parts
    }

    /// The intended-embedding characterization (the analogue of Lemma 3.1,
    /// proved in the full version for the full gadget): present iff the
    /// inputs intersect.
    pub fn intended_copy_present(x_pairs: &[(usize, usize)], y_pairs: &[(usize, usize)]) -> bool {
        let xs: std::collections::HashSet<_> = x_pairs.iter().collect();
        y_pairs.iter().any(|p| xs.contains(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skeleton_is_bipartite() {
        for k in 1..4 {
            let h = BipartiteSkeleton::build(k);
            assert!(
                graphlib::components::is_bipartite(&h.graph),
                "H_{{s,{k}}} skeleton must be bipartite"
            );
            assert_eq!(h.graph.n(), 2 * (2 + 4 * k));
        }
    }

    #[test]
    fn family_is_bipartite() {
        let fam = BipartiteFamily::new(2, 6);
        let g = fam.build(&[(0, 1)], &[(1, 0)]);
        assert!(graphlib::components::is_bipartite(&g));
    }

    #[test]
    fn intended_copy_embeds_when_inputs_intersect() {
        let fam = BipartiteFamily::new(2, 4);
        let h = BipartiteSkeleton::build(2);
        let g = fam.build(&[(1, 2)], &[(1, 2)]);
        assert!(graphlib::iso::contains_subgraph(&h.graph, &g));
        assert!(BipartiteFamily::intended_copy_present(&[(1, 2)], &[(1, 2)]));
    }

    #[test]
    fn input_edges_are_player_internal() {
        let fam = BipartiteFamily::new(2, 5);
        let parts = fam.partition();
        for copy in 0..5 {
            for &side in &[Side::Top, Side::Bottom] {
                assert_eq!(parts[fam.endpoint(side, Role::A, copy)], Party::Alice);
                assert_eq!(parts[fam.endpoint(side, Role::B, copy)], Party::Bob);
            }
        }
    }

    #[test]
    fn cut_is_theta_k_n_to_1_over_k() {
        // Gadget edges crossing parties: per gadget A-M, A-M', B-M, B-M'
        // (party<->shared) — 4 undirected crossing edges per gadget, and no
        // endpoint edge crosses.
        let fam = BipartiteFamily::new(2, 16);
        let g = fam.build(&[], &[]);
        let parts = fam.partition();
        let mut crossing = 0;
        for (u, v) in g.edges() {
            if parts[u as usize] != parts[v as usize] {
                crossing += 1;
            }
        }
        assert_eq!(crossing, 4 * 2 * fam.m_gadgets);
        assert_eq!(fam.m_gadgets, 2 * 4); // k * ceil(16^(1/2))
    }

    #[test]
    fn bound_formula_shape() {
        // k=s=2: exponent 1; larger s pushes the exponent toward 2-1/k.
        let b2 = bipartite_round_bound(1000, 2, 2, 1);
        assert!((b2 - 1000.0 / 2.0).abs() < 1e-6);
        assert!(bipartite_round_bound(1000, 5, 2, 1) > b2);
    }
}
