//! The **Theorem 5.1 / Figure 3** input distribution μ and its
//! measurements.
//!
//! The template graph `G_T`: three special nodes `v_a, v_b, v_c` joined in
//! a triangle, plus `n` private pendant neighbors per special node. A
//! sample `G ~ μ` keeps every `G_T` edge independently with probability
//! 1/2 and assigns every node an iid identifier from `[n³]`; each special
//! node's input is its *scrambled* list of potential neighbors with
//! presence bits — so it cannot tell, a priori, which of its `n + 2`
//! potential edges are the triangle edges.
//!
//! Experiment E4 measures, for the one-round protocols of
//! `subgraph_detection::triangle`:
//! * the detection error versus the message budget (stays `Ω(1)` until the
//!   budget is `Θ(n)` entries — Theorem 5.1's shape), and
//! * the empirical information the messages reaching `v_a` carry about
//!   `X_bc` given `X_ab = X_ac = 1`, against the Lemma 5.4 leakage bound
//!   `4(|M_ba}| + |M_ca|)/(n+1) + 2/n` and the Lemma 5.3 requirement
//!   (≥ 0.3 for any correct protocol).

use graphlib::{Graph, GraphBuilder};
use infotheory::Joint2;
use rand::seq::SliceRandom;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use subgraph_detection::triangle::{
    one_round_decide, one_round_message, AdjacencyInput, OneRoundStrategy,
};

/// One sample from μ.
#[derive(Debug, Clone)]
pub struct TemplateSample {
    /// The realized graph (vertex indices shuffled so position leaks
    /// nothing).
    pub graph: Graph,
    /// Identifier per vertex (iid from `[n³]`, duplicates possible as in
    /// the paper).
    pub ids: Vec<u64>,
    /// Scrambled `(id, present)` input per vertex.
    pub inputs: Vec<AdjacencyInput>,
    /// Vertex indices of the special nodes `(v_a, v_b, v_c)`.
    pub specials: [usize; 3],
    /// The three potential triangle edges `(X_ab, X_bc, X_ac)`.
    pub x: [bool; 3],
    /// Pendant-set size `n`.
    pub n: usize,
}

impl TemplateSample {
    /// Ground truth (Observation 5.2): the triangle is present iff all
    /// three special edges are.
    pub fn has_triangle(&self) -> bool {
        self.x[0] && self.x[1] && self.x[2]
    }
}

/// Draws one sample of μ with pendant-set size `n`.
pub fn sample(n: usize, rng: &mut ChaCha8Rng) -> TemplateSample {
    let total = 3 * n + 3;
    // Random vertex placement: shuffle which index plays which role.
    let mut placement: Vec<usize> = (0..total).collect();
    placement.shuffle(rng);
    let specials = [placement[0], placement[1], placement[2]];
    // Pendants of special s: placement[3 + s*n .. 3 + (s+1)*n].
    let pendant = |s: usize, i: usize| placement[3 + s * n + i];

    let namespace = (total as u64).pow(3).max(8);
    let ids: Vec<u64> = (0..total).map(|_| rng.gen_range(0..namespace)).collect();

    let x = [rng.gen_bool(0.5), rng.gen_bool(0.5), rng.gen_bool(0.5)];
    let pair_of = |s: usize, t: usize| -> usize {
        // (a,b) -> 0, (b,c) -> 1, (a,c) -> 2
        match (s.min(t), s.max(t)) {
            (0, 1) => 0,
            (1, 2) => 1,
            (0, 2) => 2,
            _ => unreachable!(),
        }
    };

    let mut b = GraphBuilder::new(total);
    let mut inputs: Vec<AdjacencyInput> = vec![AdjacencyInput::default(); total];
    // Special-special potential edges.
    for s in 0..3 {
        for t in (s + 1)..3 {
            let present = x[pair_of(s, t)];
            if present {
                b.add_edge(specials[s], specials[t]);
            }
            inputs[specials[s]]
                .entries
                .push((ids[specials[t]], present));
            inputs[specials[t]]
                .entries
                .push((ids[specials[s]], present));
        }
    }
    // Pendant potential edges.
    for s in 0..3 {
        for i in 0..n {
            let p = pendant(s, i);
            let present = rng.gen_bool(0.5);
            if present {
                b.add_edge(specials[s], p);
            }
            inputs[specials[s]].entries.push((ids[p], present));
            inputs[p].entries.push((ids[specials[s]], present));
        }
    }
    // Scramble every input (the permutations π_s of §5).
    for inp in &mut inputs {
        inp.entries.shuffle(rng);
    }

    TemplateSample {
        graph: b.build(),
        ids,
        inputs,
        specials,
        x,
        n,
    }
}

/// Runs a one-round protocol on a μ-sample *by direct evaluation* (the
/// message and decision rules are pure functions; no engine needed for one
/// round) and reports whether any node rejects.
pub fn evaluate_protocol(sample: &TemplateSample, strategy: OneRoundStrategy) -> bool {
    let g = &sample.graph;
    // Precompute every node's message.
    let messages: Vec<Vec<(u64, bool)>> = (0..g.n())
        .map(|v| one_round_message(&sample.inputs[v], strategy))
        .collect();
    (0..g.n()).any(|v| {
        let my_nbrs: Vec<u64> = g
            .neighbors(v)
            .iter()
            .map(|&u| sample.ids[u as usize])
            .collect();
        let received: Vec<(u64, Vec<(u64, bool)>)> = g
            .neighbors(v)
            .iter()
            .map(|&u| (sample.ids[u as usize], messages[u as usize].clone()))
            .collect();
        one_round_decide(&my_nbrs, &received)
    })
}

/// Detection-error measurement: fraction of μ-samples where the protocol's
/// output differs from the ground truth.
pub fn detection_error(n: usize, strategy: OneRoundStrategy, trials: usize, seed: u64) -> f64 {
    use rand::SeedableRng;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut errors = 0usize;
    for _ in 0..trials {
        let s = sample(n, &mut rng);
        let rejected = evaluate_protocol(&s, strategy);
        if rejected != s.has_triangle() {
            errors += 1;
        }
    }
    errors as f64 / trials.max(1) as f64
}

/// Empirical estimate of `I(X_bc ; M_ba, M_ca | X_ab = 1, X_ac = 1)` for a
/// prefix protocol: we encode, of the messages that reach `v_a`, exactly
/// the part that concerns the edge `{v_b, v_c}` — whether each endpoint's
/// message *reveals* that edge's bit, and the value revealed. (Everything
/// else in the messages is independent of `X_bc`, so this captures the full
/// mutual information while keeping the support small enough for a plug-in
/// estimate.)
pub fn information_about_xbc(
    n: usize,
    strategy: OneRoundStrategy,
    samples: usize,
    seed: u64,
) -> f64 {
    use rand::SeedableRng;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut joint = Joint2::new();
    let mut taken = 0usize;
    while taken < samples {
        let s = sample(n, &mut rng);
        // Condition on X_ab = 1 and X_ac = 1.
        if !(s.x[0] && s.x[2]) {
            continue;
        }
        taken += 1;
        let xbc = s.x[1];
        let (vb, vc) = (s.specials[1], s.specials[2]);
        let id_b = s.ids[vb];
        let id_c = s.ids[vc];
        // What v_b's and v_c's messages say about the b-c edge.
        let msg_b = one_round_message(&s.inputs[vb], strategy);
        let msg_c = one_round_message(&s.inputs[vc], strategy);
        let reveal = |msg: &[(u64, bool)], other: u64| -> u64 {
            match msg.iter().find(|&&(id, _)| id == other) {
                Some(&(_, bit)) => 1 + bit as u64,
                None => 0,
            }
        };
        let y = reveal(&msg_b, id_c) * 3 + reveal(&msg_c, id_b);
        joint.add(xbc as u64, y);
    }
    joint.mutual_information()
}

/// The Lemma 5.4 leakage bound for a prefix budget of `pairs` entries:
/// `4(|M_ba| + |M_ca|)/(n+1) + 2/n`, with message lengths measured in
/// entries-revealed terms of the uniform hidden index (each of the two
/// messages reveals the hidden coordinate with probability
/// `pairs/(n+2)`).
pub fn lemma_5_4_bound(n: usize, pairs: usize) -> f64 {
    let m = pairs as f64;
    4.0 * (m + m) / (n as f64 + 1.0) + 2.0 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn sample_shape() {
        let s = sample(10, &mut rng(1));
        assert_eq!(s.graph.n(), 33);
        assert_eq!(s.inputs[s.specials[0]].entries.len(), 12);
        // Pendants have exactly one potential neighbor.
        let pendant = (0..33).find(|v| !s.specials.contains(v)).unwrap();
        assert_eq!(s.inputs[pendant].entries.len(), 1);
    }

    #[test]
    fn triangle_probability_one_eighth() {
        let mut r = rng(2);
        let trials = 4000;
        let hits = (0..trials)
            .filter(|_| sample(4, &mut r).has_triangle())
            .count();
        let p = hits as f64 / trials as f64;
        assert!((p - 0.125).abs() < 0.02, "p = {p}");
    }

    #[test]
    fn graph_matches_input_bits() {
        let s = sample(6, &mut rng(3));
        // The specials' present entries must equal their actual neighbors.
        for &sp in &s.specials {
            let mut present: Vec<u64> = s.inputs[sp]
                .entries
                .iter()
                .filter(|&&(_, b)| b)
                .map(|&(id, _)| id)
                .collect();
            let mut actual: Vec<u64> = s
                .graph
                .neighbors(sp)
                .iter()
                .map(|&u| s.ids[u as usize])
                .collect();
            present.sort_unstable();
            actual.sort_unstable();
            assert_eq!(present, actual);
        }
    }

    #[test]
    fn full_protocol_has_negligible_error() {
        // Duplicated iid identifiers can in principle confuse even the full
        // protocol, but with namespace n³ this is vanishing.
        let err = detection_error(8, OneRoundStrategy::Full, 400, 4);
        assert!(err < 0.02, "err = {err}");
    }

    #[test]
    fn empty_budget_error_is_exactly_triangle_rate() {
        // Sending nothing forces "accept": error = Pr[triangle] = 1/8.
        let err = detection_error(8, OneRoundStrategy::Prefix(0), 2000, 5);
        assert!((err - 0.125).abs() < 0.03, "err = {err}");
    }

    #[test]
    fn small_budget_keeps_error_bounded_away_from_zero() {
        let err = detection_error(16, OneRoundStrategy::Prefix(2), 1500, 6);
        assert!(err > 0.05, "a 2-entry budget cannot solve n=16: err={err}");
    }

    #[test]
    fn error_decreases_with_budget() {
        let e_small = detection_error(12, OneRoundStrategy::Prefix(1), 1200, 7);
        let e_large = detection_error(12, OneRoundStrategy::Prefix(14), 1200, 7);
        assert!(
            e_large < e_small,
            "larger budget must help: {e_large} !< {e_small}"
        );
        assert!(e_large < 0.02);
    }

    #[test]
    fn information_increases_with_budget_and_respects_bound() {
        let n = 12;
        let i_small = information_about_xbc(n, OneRoundStrategy::Prefix(1), 4000, 8);
        let i_full = information_about_xbc(n, OneRoundStrategy::Full, 4000, 8);
        assert!(i_small < i_full);
        // Full reveal carries the whole bit (Lemma 5.3 side).
        assert!(i_full > 0.9, "i_full = {i_full}");
        // Small budgets stay under the Lemma 5.4 leakage bound.
        assert!(
            i_small <= lemma_5_4_bound(n, 1) + 0.05,
            "{i_small} > bound {}",
            lemma_5_4_bound(n, 1)
        );
        assert!(
            i_small < 0.3,
            "Lemma 5.3 threshold cannot be met at budget 1"
        );
    }

    #[test]
    fn bound_formula_shape() {
        assert!(lemma_5_4_bound(100, 1) < lemma_5_4_bound(100, 10));
        assert!(lemma_5_4_bound(200, 5) < lemma_5_4_bound(100, 5));
    }
}
