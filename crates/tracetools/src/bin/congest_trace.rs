//! `congest-trace` — the command-line front end of the trace toolkit.
//!
//! Usage:
//!   congest-trace check <trace.jsonl | run_report.json | flight.jsonl>
//!       Verify trace invariants (bandwidth bound respected, fault
//!       accounting consistent, rounds monotone, causal deps resolvable)
//!       or, for a `.json` run report, its structural invariants
//!       (schema/version, tallies vs per-round series). A flight-recorder
//!       dump (first line tagged `congest.flight_record`) gets the
//!       windowed-dump checks instead — the full-trace checker cannot run
//!       on a ring whose causal deps aged out. Exit 1 on any violation.
//!   congest-trace critical-path <trace.jsonl>
//!   congest-trace critical-path --canonical
//!       Print the weighted critical path — the heaviest chain of causally
//!       dependent messages — per trace segment and per phase, as one
//!       compact JSON line followed by a human table. `--canonical` runs
//!       the canonical planted-C4 even-cycle scenario in-process and
//!       analyzes its trace (deterministic at any thread count — the
//!       `scripts/check.sh` determinism gate diffs this output across
//!       `RAYON_NUM_THREADS` values).
//!   congest-trace heatmap <trace.jsonl>
//!       Per-round, per-sender congestion heatmap with bandwidth
//!       utilization bars and the hottest sender/port pairs.
//!   congest-trace diff <a.jsonl> <b.jsonl>
//!       Structural diff of two traces: first diverging event, length and
//!       total mismatches. Exit 1 when the traces differ.
//!   congest-trace idle-tail <trace.jsonl | --canonical>
//!       Per-segment idle-tail report: rounds each segment kept ticking
//!       after its last message. Run on a trace recorded *without* early
//!       termination (the canonical scenario qualifies), this is exactly
//!       the round count `Simulation::early_termination` saves.
//!   congest-trace tail <flight.jsonl>
//!       Human-readable view of a flight-recorder dump: run identity,
//!       streaming totals, the retained ring as per-round aggregate lines,
//!       both top-k sketches, and the reservoir-sample count.
//!   congest-trace dump --canonical
//!       Render the canonical planted-C4 even-cycle scenario's trace as
//!       JSONL on stdout — the producer side of the `diff` gate in
//!       `scripts/check.sh`, which compares the current engine's canonical
//!       trace against the committed pre-fusion golden.
//!   congest-trace dump --flight-canonical
//!       Render the canonical flight record (the same scenario with a
//!       small-capacity flight recorder riding along) on stdout — the
//!       producer side of the flight-golden and cross-thread-count
//!       determinism gates in `scripts/check.sh`.
//!   congest-trace dump --flight-faulty [n]
//!       Render the flight record of a *faulty* census-size run (the
//!       E3-scale planted-C4 instance at n, default 10^5, under 20%
//!       independent loss) — the EXPERIMENTS.md walkthrough producer.
//!       Expect about a minute at the default size.
//!   congest-trace profile
//!       Run the canonical scenarios with the engine self-profiler
//!       installed; folded stacks on stdout (flamegraph input), summary
//!       table on stderr.

use std::io::Write;
use std::process::ExitCode;

const USAGE: &str = "usage: congest-trace <command> [args]\n\
  check <trace.jsonl | run_report.json | flight.jsonl>\n\
  critical-path <trace.jsonl | --canonical>\n\
  heatmap <trace.jsonl>\n\
  diff <a.jsonl> <b.jsonl>\n\
  idle-tail <trace.jsonl | --canonical>\n\
  tail <flight.jsonl>\n\
  dump --canonical | --flight-canonical | --flight-faulty [n]\n\
  profile\n";

/// Write to stdout, exiting with the conventional SIGPIPE status (141)
/// when the reader has gone away (`congest-trace ... | head` must not
/// panic). Rust maps SIGPIPE to an `ErrorKind::BrokenPipe` write error
/// instead of killing the process, so the exit has to be explicit.
fn out(text: std::fmt::Arguments<'_>) {
    if let Err(e) = std::io::stdout().write_fmt(text) {
        if e.kind() == std::io::ErrorKind::BrokenPipe {
            std::process::exit(141);
        }
        eprintln!("error writing to stdout: {e}");
        std::process::exit(1);
    }
}

macro_rules! outln {
    ($($arg:tt)*) => { out(format_args!("{}\n", format_args!($($arg)*))) };
}

macro_rules! outp {
    ($($arg:tt)*) => { out(format_args!($($arg)*)) };
}

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))
}

fn load_events(path: &str) -> Result<Vec<congest::SimEvent>, String> {
    let dump = read(path)?;
    tracetools::parse_jsonl(&dump).map_err(|e| format!("{path}: {e}"))
}

/// Whether a document is a flight-recorder dump: its first non-empty line
/// leads with the `congest.flight_record` header.
fn is_flight_dump(doc: &str) -> bool {
    doc.lines()
        .find(|l| !l.trim().is_empty())
        .is_some_and(|l| l.trim_start().starts_with(r#"{"schema":"congest.flight_record""#))
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    match args {
        [cmd, path] if cmd == "check" => {
            let doc = read(path)?;
            let violations = if is_flight_dump(&doc) {
                tracetools::check_flight(&doc)
            } else if path.ends_with(".json") {
                tracetools::check_run_report(&doc)
            } else {
                let events =
                    tracetools::parse_jsonl(&doc).map_err(|e| format!("{path}: {e}"))?;
                congest::obsv::check(&events)
            };
            if violations.is_empty() {
                outln!("{path}: OK");
                Ok(ExitCode::SUCCESS)
            } else {
                for v in &violations {
                    outln!("{path}: {v}");
                }
                Ok(ExitCode::FAILURE)
            }
        }
        [cmd, source] if cmd == "critical-path" => {
            let events = if source == "--canonical" {
                bench::perf::canonical_fault_free_traced().1
            } else {
                load_events(source)?
            };
            let cp = congest::obsv::critical_path(&events);
            outln!("{}", cp.to_json());
            outp!("{}", cp.render());
            Ok(ExitCode::SUCCESS)
        }
        [cmd, path] if cmd == "heatmap" => {
            outp!("{}", congest::obsv::heatmap(&load_events(path)?));
            Ok(ExitCode::SUCCESS)
        }
        [cmd, a, b] if cmd == "diff" => {
            let lines = congest::obsv::diff(&load_events(a)?, &load_events(b)?);
            if lines.is_empty() {
                outln!("traces identical ({a} vs {b})");
                Ok(ExitCode::SUCCESS)
            } else {
                for l in &lines {
                    outln!("{l}");
                }
                Ok(ExitCode::FAILURE)
            }
        }
        [cmd, source] if cmd == "idle-tail" => {
            let events = if source == "--canonical" {
                bench::perf::canonical_fault_free_traced().1
            } else {
                load_events(source)?
            };
            outp!("{}", congest::obsv::idle_tail(&events).render());
            Ok(ExitCode::SUCCESS)
        }
        [cmd, path] if cmd == "tail" => {
            let doc = read(path)?;
            let rec = tracetools::parse_flight(&doc).map_err(|e| format!("{path}: {e}"))?;
            outp!("{}", tracetools::render_flight_tail(&rec));
            Ok(ExitCode::SUCCESS)
        }
        [cmd, source] if cmd == "dump" && source == "--canonical" => {
            let (_, events) = bench::perf::canonical_fault_free_traced();
            outp!("{}", tracetools::render_jsonl(&events));
            Ok(ExitCode::SUCCESS)
        }
        [cmd, source] if cmd == "dump" && source == "--flight-canonical" => {
            outp!("{}", bench::perf::canonical_flight_record());
            Ok(ExitCode::SUCCESS)
        }
        [cmd, source, rest @ ..] if cmd == "dump" && source == "--flight-faulty" => {
            let n = match rest {
                [] => 100_000,
                [n] => n
                    .parse()
                    .map_err(|_| format!("--flight-faulty: not a size: {n}\n{USAGE}"))?,
                _ => return Err(USAGE.to_string()),
            };
            outp!("{}", bench::perf::faulty_flight_record(n));
            Ok(ExitCode::SUCCESS)
        }
        [cmd] if cmd == "profile" => {
            let (folded, table) = bench::perf::profile_canonical();
            eprintln!("==> engine self-profile over the canonical scenarios");
            eprint!("{table}");
            outp!("{folded}");
            Ok(ExitCode::SUCCESS)
        }
        _ => Err(USAGE.to_string()),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprint!("{msg}");
            if !msg.ends_with('\n') {
                eprintln!();
            }
            ExitCode::from(2)
        }
    }
}
