//! Offline trace tooling for the `congest` simulators.
//!
//! The simulators export their structured event stream as JSON lines
//! (one [`SimEvent`] per line, rendered by
//! [`JsonlTrace::render`](congest::JsonlTrace::render)). This crate is the
//! other direction: [`parse_jsonl`] reads such a dump back into event
//! values so the [`congest::obsv::analyze`] consumers — invariant checker,
//! critical-path extractor, heatmap, diff — run against traces recorded in
//! a different process (or a different machine). The `congest-trace`
//! binary wraps the whole round trip as a command-line toolkit.
//!
//! The parser is hand-rolled against the exact renderer format (the repo
//! vendors no JSON library by design): flat objects, known keys, the only
//! nested value being the `deps` id array on `send` lines. Unknown `ev`
//! tags are an error — a trace from a newer schema should fail loudly, not
//! be silently half-read.

#![warn(missing_docs)]

use congest::SimEvent;
use std::sync::Arc;

/// A parse failure: line number (1-based) plus a description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Extracts the raw text of a scalar field (`"key":value`) from a flat
/// JSON object line. Stops at `,`, `}` or `]`; quotes are stripped.
fn raw_field<'a>(obj: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = obj.find(&pat)? + pat.len();
    let rest = obj[start..].trim_start();
    if let Some(stripped) = rest.strip_prefix('"') {
        let end = stripped.find('"')?;
        Some(&stripped[..end])
    } else {
        let end = rest.find([',', '}', ']']).unwrap_or(rest.len());
        Some(rest[..end].trim())
    }
}

fn num<T: std::str::FromStr>(obj: &str, key: &str, line: usize) -> Result<T, ParseError> {
    raw_field(obj, key)
        .ok_or_else(|| err(line, format!("missing field \"{key}\"")))?
        .parse()
        .map_err(|_| err(line, format!("field \"{key}\" is not a number")))
}

/// A port field: `-1` encodes the broadcast marker `usize::MAX`.
fn port(obj: &str, line: usize) -> Result<usize, ParseError> {
    let raw = raw_field(obj, "port").ok_or_else(|| err(line, "missing field \"port\""))?;
    if raw == "-1" {
        Ok(usize::MAX)
    } else {
        raw.parse()
            .map_err(|_| err(line, "field \"port\" is not a number"))
    }
}

/// The `deps` id array of a `send` line.
fn deps(obj: &str, line: usize) -> Result<Arc<[u64]>, ParseError> {
    let pat = "\"deps\":[";
    let start = obj
        .find(pat)
        .ok_or_else(|| err(line, "missing field \"deps\""))?
        + pat.len();
    let rest = &obj[start..];
    let end = rest
        .find(']')
        .ok_or_else(|| err(line, "unterminated \"deps\" array"))?;
    let body = &rest[..end];
    if body.trim().is_empty() {
        return Ok(Arc::from([]));
    }
    let ids: Result<Vec<u64>, _> = body.split(',').map(|s| s.trim().parse()).collect();
    ids.map(Arc::from)
        .map_err(|_| err(line, "non-numeric id in \"deps\""))
}

fn delivery(
    obj: &str,
    line: usize,
) -> Result<(usize, usize, usize, usize, usize, u64), ParseError> {
    Ok((
        num(obj, "round", line)?,
        num(obj, "from", line)?,
        num(obj, "to", line)?,
        port(obj, line)?,
        num(obj, "bits", line)?,
        num(obj, "msg_id", line)?,
    ))
}

/// Parses one JSONL line back into the event it was rendered from.
pub fn parse_line(obj: &str, line: usize) -> Result<SimEvent, ParseError> {
    let ev = raw_field(obj, "ev").ok_or_else(|| err(line, "missing field \"ev\""))?;
    match ev {
        "meta" => Ok(SimEvent::Meta {
            n: num(obj, "n", line)?,
            bandwidth_bits: num(obj, "bandwidth", line)?,
            seed: num(obj, "seed", line)?,
        }),
        "phase" => Ok(SimEvent::Phase {
            name: raw_field(obj, "name")
                .ok_or_else(|| err(line, "missing field \"name\""))?
                .into(),
            repetition: num(obj, "repetition", line)?,
        }),
        "round_start" => Ok(SimEvent::RoundStart {
            round: num(obj, "round", line)?,
        }),
        "round_end" => Ok(SimEvent::RoundEnd {
            round: num(obj, "round", line)?,
            bits: num(obj, "bits", line)?,
            messages: num(obj, "messages", line)?,
            dropped: num(obj, "dropped", line)?,
            corrupted: num(obj, "corrupted", line)?,
        }),
        "send" => Ok(SimEvent::Send {
            round: num(obj, "round", line)?,
            from: num(obj, "from", line)?,
            port: port(obj, line)?,
            bits: num(obj, "bits", line)?,
            msg_id: num(obj, "msg_id", line)?,
            deps: deps(obj, line)?,
        }),
        "deliver" => {
            let (round, from, to, port, bits, msg_id) = delivery(obj, line)?;
            Ok(SimEvent::Deliver {
                round,
                from,
                to,
                port,
                bits,
                msg_id,
            })
        }
        "drop" => {
            let (round, from, to, port, bits, msg_id) = delivery(obj, line)?;
            Ok(SimEvent::Drop {
                round,
                from,
                to,
                port,
                bits,
                msg_id,
            })
        }
        "corrupt" => {
            let (round, from, to, port, bits, msg_id) = delivery(obj, line)?;
            Ok(SimEvent::Corrupt {
                round,
                from,
                to,
                port,
                bits,
                msg_id,
            })
        }
        "crash" => Ok(SimEvent::Crash {
            round: num(obj, "round", line)?,
            node: num(obj, "node", line)?,
        }),
        "compute" => Ok(SimEvent::NodeCompute {
            round: num(obj, "round", line)?,
            node: num(obj, "node", line)?,
            nanos: num(obj, "nanos", line)?,
        }),
        "transport" => Ok(SimEvent::TransportSummary {
            retransmissions: num(obj, "retransmissions", line)?,
            given_up: num(obj, "given_up", line)?,
            backoff_events: num(obj, "backoff_events", line)?,
        }),
        other => Err(err(line, format!("unknown event kind \"{other}\""))),
    }
}

/// Parses a whole JSONL dump (empty lines skipped) back into the event
/// stream it was rendered from. The round trip through
/// [`JsonlTrace::render`](congest::JsonlTrace::render) is exact.
pub fn parse_jsonl(dump: &str) -> Result<Vec<SimEvent>, ParseError> {
    dump.lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(i, l)| parse_line(l.trim(), i + 1))
        .collect()
}

/// Renders an event stream as a JSONL dump (the inverse of
/// [`parse_jsonl`]; trailing newline included when non-empty).
pub fn render_jsonl(events: &[SimEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&congest::JsonlTrace::render(ev));
        out.push('\n');
    }
    out
}

/// Extracts a `"key": [..]` numeric array from a run-report document.
/// Returns `None` when the key is absent.
fn u64_array(doc: &str, key: &str) -> Option<Vec<u64>> {
    let pat = format!("\"{key}\":");
    let start = doc.find(&pat)? + pat.len();
    let rest = doc[start..].trim_start().strip_prefix('[')?;
    let end = rest.find(']')?;
    let body = rest[..end].trim();
    if body.is_empty() {
        return Some(Vec::new());
    }
    body.split(',').map(|s| s.trim().parse().ok()).collect()
}

/// Structural invariant checks for a schema-versioned run-report JSON
/// document (`congest.run_report`). Returns human-readable violations;
/// empty means the document is internally consistent:
///
/// * schema tag and version are present, and the version is one this
///   toolkit understands;
/// * braces and brackets balance (cheap well-formedness);
/// * the scalar fault tallies match their per-round and per-link series
///   (`dropped` == sum of `dropped_per_round`, `retransmissions` == sum
///   of both `retransmissions_per_round` and `retransmissions_per_link`)
///   when the series are present;
/// * the `per_round_bits` series has one entry per executed round.
pub fn check_run_report(doc: &str) -> Vec<String> {
    let mut out = Vec::new();
    match raw_field(doc, "schema") {
        None => out.push("missing \"schema\" field".into()),
        Some(s) if s != congest::RUN_REPORT_SCHEMA => {
            out.push(format!(
                "schema \"{s}\" is not \"{}\"",
                congest::RUN_REPORT_SCHEMA
            ));
        }
        Some(_) => {}
    }
    match raw_field(doc, "version").and_then(|v| v.parse::<u32>().ok()) {
        None => out.push("missing or non-numeric \"version\" field".into()),
        Some(v) if v == 0 || v > congest::RUN_REPORT_VERSION => out.push(format!(
            "version {v} outside the supported range 1..={}",
            congest::RUN_REPORT_VERSION
        )),
        Some(_) => {}
    }
    if doc.matches('{').count() != doc.matches('}').count()
        || doc.matches('[').count() != doc.matches(']').count()
    {
        out.push("unbalanced braces or brackets".into());
    }
    let scalar = |key: &str| raw_field(doc, key).and_then(|v| v.parse::<u64>().ok());
    for (total_key, series_key) in [
        ("dropped", "dropped_per_round"),
        ("retransmissions", "retransmissions_per_round"),
        ("retransmissions", "retransmissions_per_link"),
    ] {
        if let (Some(total), Some(series)) = (scalar(total_key), u64_array(doc, series_key)) {
            let sum: u64 = series.iter().sum();
            if !series.is_empty() && sum != total {
                out.push(format!(
                    "\"{total_key}\" is {total} but \"{series_key}\" sums to {sum}"
                ));
            }
        }
    }
    if let (Some(rounds), Some(series)) = (scalar("rounds"), u64_array(doc, "per_round_bits")) {
        if series.len() as u64 != rounds {
            out.push(format!(
                "\"per_round_bits\" has {} entries but \"rounds\" is {rounds}",
                series.len()
            ));
        }
    }
    out
}

/// One `(sender, port)` entry of a flight-record header's heavy-edge
/// sketch: `bits` is the space-saving count (an overestimate by at most
/// `err`), `port` is `usize::MAX` for broadcast (rendered `-1`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightTopEdge {
    /// Sending node.
    pub from: usize,
    /// Outgoing port (`usize::MAX` = broadcast).
    pub port: usize,
    /// Estimated bits sent over the edge (count of the sketch entry).
    pub bits: u64,
    /// Maximum overestimation inherited from evicted entries.
    pub err: u64,
}

/// One sender entry of a flight-record header's heavy-sender sketch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightTopSender {
    /// Sending node.
    pub from: usize,
    /// Estimated bits sent by the node (count of the sketch entry).
    pub bits: u64,
    /// Maximum overestimation inherited from evicted entries.
    pub err: u64,
}

/// A parsed flight-recorder dump (`congest.flight_record` — see
/// [`congest::FlightRecorder`]): the header's identity + streaming totals +
/// top-k sketches, the raw ring events (meta, last-K closed rounds, open
/// partial tail) and the reservoir-sampled sends.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightRecord {
    /// Dump format version (header `version`).
    pub version: u32,
    /// Node count of the run (0 when no meta event was recorded).
    pub n: usize,
    /// Per-edge bandwidth in bits (0 when no meta event was recorded).
    pub bandwidth_bits: usize,
    /// Run seed (0 when no meta event was recorded).
    pub seed: u64,
    /// Closed rounds folded into the streaming totals.
    pub rounds: u64,
    /// Total bits over all closed rounds.
    pub bits: u64,
    /// Total messages over all closed rounds (broadcast counts per port).
    pub messages: u64,
    /// Total dropped messages over all closed rounds.
    pub dropped: u64,
    /// Total corrupted messages over all closed rounds.
    pub corrupted: u64,
    /// Delivery events seen (streamed; includes an open partial round).
    pub delivered: u64,
    /// Crash events seen (streamed; includes an open partial round).
    pub crashes: u64,
    /// Transport retransmissions (folded from transport summaries).
    pub retransmissions: u64,
    /// Messages the transport gave up on.
    pub given_up: u64,
    /// Transport backoff events.
    pub backoff_events: u64,
    /// Configured ring capacity in rounds.
    pub ring_capacity: usize,
    /// Closed rounds actually retained in the ring.
    pub ring_rounds: usize,
    /// Events lost to the per-round cap (cumulative over the run).
    pub ring_dropped_events: u64,
    /// Configured reservoir capacity.
    pub sample_capacity: usize,
    /// Sends actually retained in the reservoir.
    pub samples: usize,
    /// Total send events observed by the sampler.
    pub sends_seen: u64,
    /// The heaviest `(sender, port)` pairs by bits, heaviest first.
    pub top_edges: Vec<FlightTopEdge>,
    /// The heaviest senders by bits, heaviest first.
    pub top_senders: Vec<FlightTopSender>,
    /// Raw body events: the meta line, then the ring (last K closed
    /// rounds), then any open partial round, in dump order.
    pub events: Vec<SimEvent>,
    /// The reservoir sample (each a [`SimEvent::Send`]), in slot order.
    pub sampled_sends: Vec<SimEvent>,
}

/// Splits a `"key":[{..},{..}]` array of flat objects into its object
/// bodies. The flight-header sketch arrays nest no further brackets, so
/// the first `]` closes the array.
fn obj_array<'a>(doc: &'a str, key: &str) -> Option<Vec<&'a str>> {
    let pat = format!("\"{key}\":[");
    let start = doc.find(&pat)? + pat.len();
    let rest = &doc[start..];
    let end = rest.find(']')?;
    let body = &rest[..end];
    if body.trim().is_empty() {
        return Some(Vec::new());
    }
    Some(body.split("},{").collect())
}

/// Parses a flight-recorder dump (first line `congest.flight_record`
/// header, then JSONL body) back into a [`FlightRecord`]. Sample lines
/// (`"ev":"sample"`) are send lines in disguise; they parse into
/// [`FlightRecord::sampled_sends`].
pub fn parse_flight(dump: &str) -> Result<FlightRecord, ParseError> {
    let mut lines = dump
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty());
    let (hidx, header) = lines.next().ok_or_else(|| err(1, "empty flight record"))?;
    let hline = hidx + 1;
    match raw_field(header, "schema") {
        Some(s) if s == congest::FLIGHT_RECORD_SCHEMA => {}
        Some(s) => {
            return Err(err(
                hline,
                format!("schema \"{s}\" is not \"{}\"", congest::FLIGHT_RECORD_SCHEMA),
            ))
        }
        None => return Err(err(hline, "missing field \"schema\"")),
    }
    let version: u32 = num(header, "version", hline)?;
    if version == 0 || version > congest::FLIGHT_RECORD_VERSION {
        return Err(err(
            hline,
            format!(
                "version {version} outside the supported range 1..={}",
                congest::FLIGHT_RECORD_VERSION
            ),
        ));
    }
    let top_edges = obj_array(header, "top_edges")
        .ok_or_else(|| err(hline, "missing \"top_edges\" array"))?
        .into_iter()
        .map(|o| {
            Ok(FlightTopEdge {
                from: num(o, "from", hline)?,
                port: port(o, hline)?,
                bits: num(o, "bits", hline)?,
                err: num(o, "err", hline)?,
            })
        })
        .collect::<Result<Vec<_>, ParseError>>()?;
    let top_senders = obj_array(header, "top_senders")
        .ok_or_else(|| err(hline, "missing \"top_senders\" array"))?
        .into_iter()
        .map(|o| {
            Ok(FlightTopSender {
                from: num(o, "from", hline)?,
                bits: num(o, "bits", hline)?,
                err: num(o, "err", hline)?,
            })
        })
        .collect::<Result<Vec<_>, ParseError>>()?;
    let mut events = Vec::new();
    let mut sampled_sends = Vec::new();
    for (i, l) in lines {
        let l = l.trim();
        let lineno = i + 1;
        if l.contains(r#""ev":"sample""#) {
            let as_send = l.replacen(r#""ev":"sample""#, r#""ev":"send""#, 1);
            match parse_line(&as_send, lineno)? {
                ev @ SimEvent::Send { .. } => sampled_sends.push(ev),
                _ => return Err(err(lineno, "\"sample\" line is not a send")),
            }
        } else {
            events.push(parse_line(l, lineno)?);
        }
    }
    Ok(FlightRecord {
        version,
        n: num(header, "n", hline)?,
        bandwidth_bits: num(header, "bandwidth", hline)?,
        seed: num(header, "seed", hline)?,
        rounds: num(header, "rounds", hline)?,
        bits: num(header, "bits", hline)?,
        messages: num(header, "messages", hline)?,
        dropped: num(header, "dropped", hline)?,
        corrupted: num(header, "corrupted", hline)?,
        delivered: num(header, "delivered", hline)?,
        crashes: num(header, "crashes", hline)?,
        retransmissions: num(header, "retransmissions", hline)?,
        given_up: num(header, "given_up", hline)?,
        backoff_events: num(header, "backoff_events", hline)?,
        ring_capacity: num(header, "ring_capacity", hline)?,
        ring_rounds: num(header, "ring_rounds", hline)?,
        ring_dropped_events: num(header, "ring_dropped_events", hline)?,
        sample_capacity: num(header, "sample_capacity", hline)?,
        samples: num(header, "samples", hline)?,
        sends_seen: num(header, "sends_seen", hline)?,
        top_edges,
        top_senders,
        events,
        sampled_sends,
    })
}

/// Structural invariant checks for a flight-recorder dump. Returns
/// human-readable violations; empty means the dump is internally
/// consistent. The full-trace checker ([`congest::obsv::check`]) cannot
/// run here — the ring's causal deps reference messages that aged out —
/// so these are the invariants a *windowed* dump does guarantee:
///
/// * the header parses, with a supported schema/version, and braces and
///   brackets balance;
/// * ring rounds are properly bracketed (`round_start` / `round_end`
///   pairs, at most one open partial round at the tail) and their count
///   matches the header within the configured capacity;
/// * per-round event counts never exceed the closing `round_end` tallies
///   (they can undercount — the per-round cap truncates, broadcasts fan
///   out, and receiver-down drops carry no event — but never overcount);
/// * the reservoir is exactly `min(sample_capacity, sends_seen)` sends;
/// * streamed totals are mutually consistent when no round is open;
/// * both sketches are sorted heaviest-first with `err <= bits`.
pub fn check_flight(doc: &str) -> Vec<String> {
    let rec = match parse_flight(doc) {
        Ok(r) => r,
        Err(e) => return vec![e.to_string()],
    };
    let mut out = Vec::new();
    if doc.matches('{').count() != doc.matches('}').count()
        || doc.matches('[').count() != doc.matches(']').count()
    {
        out.push("unbalanced braces or brackets".into());
    }
    if rec.ring_rounds > rec.ring_capacity {
        out.push(format!(
            "header retains {} ring rounds but capacity is {}",
            rec.ring_rounds, rec.ring_capacity
        ));
    }
    if rec.rounds < rec.ring_rounds as u64 {
        out.push(format!(
            "header retains {} ring rounds but only {} rounds closed",
            rec.ring_rounds, rec.rounds
        ));
    }
    let expect_samples = rec.sends_seen.min(rec.sample_capacity as u64);
    if rec.samples as u64 != expect_samples {
        out.push(format!(
            "reservoir holds {} samples; min(capacity {}, sends_seen {}) is {expect_samples}",
            rec.samples, rec.sample_capacity, rec.sends_seen
        ));
    }
    if rec.sampled_sends.len() != rec.samples {
        out.push(format!(
            "header says {} samples but the body carries {}",
            rec.samples,
            rec.sampled_sends.len()
        ));
    }
    let mut open_round: Option<usize> = None;
    let mut closed_rounds = 0usize;
    let (mut sends, mut drops, mut corrupts) = (0u64, 0u64, 0u64);
    let mut meta_seen = false;
    for (i, ev) in rec.events.iter().enumerate() {
        match *ev {
            SimEvent::Meta { .. } => {
                if meta_seen {
                    out.push("duplicate meta line in the body".into());
                }
                if i != 0 {
                    out.push("meta line is not first in the body".into());
                }
                meta_seen = true;
            }
            SimEvent::RoundStart { round } => {
                if let Some(r) = open_round {
                    out.push(format!("round {round} starts while round {r} is open"));
                }
                open_round = Some(round);
                (sends, drops, corrupts) = (0, 0, 0);
            }
            SimEvent::Send { .. } => sends += 1,
            SimEvent::Drop { .. } => drops += 1,
            SimEvent::Corrupt { .. } => corrupts += 1,
            SimEvent::Deliver { .. } | SimEvent::Crash { .. } => {}
            SimEvent::RoundEnd {
                round,
                messages,
                dropped,
                corrupted,
                ..
            } => {
                match open_round.take() {
                    Some(r) if r == round => {}
                    Some(r) => out.push(format!("round_end for round {round} inside round {r}")),
                    None => out.push(format!("round_end for round {round} without a round_start")),
                }
                closed_rounds += 1;
                for (label, counted, tally) in [
                    ("send events", sends, messages as u64),
                    ("drop events", drops, dropped as u64),
                    ("corrupt events", corrupts, corrupted as u64),
                ] {
                    if counted > tally {
                        out.push(format!(
                            "round {round}: {counted} {label} exceed the round_end tally {tally}"
                        ));
                    }
                }
            }
            _ => out.push(format!("unexpected event kind in the ring (line-order index {i})")),
        }
    }
    if closed_rounds != rec.ring_rounds {
        out.push(format!(
            "header says {} ring rounds but the body closes {closed_rounds}",
            rec.ring_rounds
        ));
    }
    // Streamed totals (delivered, sends_seen) include an open partial
    // round the folded totals don't — comparable only when none is open.
    if open_round.is_none() {
        if rec.delivered + rec.dropped + rec.corrupted > rec.messages {
            out.push(format!(
                "totals: delivered {} + dropped {} + corrupted {} exceeds messages {}",
                rec.delivered, rec.dropped, rec.corrupted, rec.messages
            ));
        }
        if rec.sends_seen > rec.messages {
            out.push(format!(
                "totals: {} sends seen but only {} messages accounted",
                rec.sends_seen, rec.messages
            ));
        }
    }
    for (name, entries) in [
        (
            "top_edges",
            rec.top_edges
                .iter()
                .map(|e| (e.bits, e.err))
                .collect::<Vec<_>>(),
        ),
        (
            "top_senders",
            rec.top_senders
                .iter()
                .map(|e| (e.bits, e.err))
                .collect::<Vec<_>>(),
        ),
    ] {
        if entries.windows(2).any(|w| w[0].0 < w[1].0) {
            out.push(format!("\"{name}\" is not sorted heaviest-first"));
        }
        if entries.iter().any(|&(bits, err)| err > bits) {
            out.push(format!("\"{name}\" has an entry with err > bits"));
        }
    }
    out
}

/// Renders a parsed flight record as the human-readable `tail` view: run
/// identity, streaming totals, the retained ring as per-round aggregate
/// lines (plus any open partial round), both top-k sketches, and the
/// sample count. Deterministic — derived entirely from the dump.
pub fn render_flight_tail(rec: &FlightRecord) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "flight record v{}: n={} bandwidth={}b seed={}",
        rec.version, rec.n, rec.bandwidth_bits, rec.seed
    );
    let _ = writeln!(
        out,
        "totals: {} rounds, {} bits, {} messages ({} delivered, {} dropped, {} corrupted, {} crashes)",
        rec.rounds, rec.bits, rec.messages, rec.delivered, rec.dropped, rec.corrupted, rec.crashes
    );
    if rec.retransmissions + rec.given_up + rec.backoff_events > 0 {
        let _ = writeln!(
            out,
            "transport: {} retransmissions, {} given up, {} backoff events",
            rec.retransmissions, rec.given_up, rec.backoff_events
        );
    }
    let _ = writeln!(
        out,
        "ring: last {} of {} rounds ({} events truncated by the per-round cap)",
        rec.ring_rounds, rec.rounds, rec.ring_dropped_events
    );
    let mut open_round: Option<usize> = None;
    let mut open_events = 0usize;
    for ev in &rec.events {
        match *ev {
            SimEvent::RoundStart { round } => {
                open_round = Some(round);
                open_events = 0;
            }
            SimEvent::RoundEnd {
                round,
                bits,
                messages,
                dropped,
                corrupted,
            } => {
                open_round = None;
                let _ = writeln!(
                    out,
                    "  round {round}: {messages} messages, {bits} bits, {dropped} dropped, {corrupted} corrupted"
                );
            }
            SimEvent::Meta { .. } => {}
            _ => open_events += 1,
        }
    }
    if let Some(round) = open_round {
        let _ = writeln!(out, "  round {round} (partial): {open_events} events buffered");
    }
    if !rec.top_edges.is_empty() {
        let _ = writeln!(out, "top edges (bits, +err overestimate):");
        for e in &rec.top_edges {
            let port = if e.port == usize::MAX {
                "broadcast".to_string()
            } else {
                format!("port {}", e.port)
            };
            let _ = writeln!(out, "  node {} -> {}: {} (+{})", e.from, port, e.bits, e.err);
        }
    }
    if !rec.top_senders.is_empty() {
        let _ = writeln!(out, "top senders (bits, +err overestimate):");
        for e in &rec.top_senders {
            let _ = writeln!(out, "  node {}: {} (+{})", e.from, e.bits, e.err);
        }
    }
    let _ = writeln!(
        out,
        "samples: {} of {} sends (seeded reservoir)",
        rec.samples, rec.sends_seen
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_kinds() -> Vec<SimEvent> {
        vec![
            SimEvent::Meta {
                n: 9,
                bandwidth_bits: 32,
                seed: 7,
            },
            SimEvent::Phase {
                name: "phase1".into(),
                repetition: 3,
            },
            SimEvent::RoundStart { round: 1 },
            SimEvent::Send {
                round: 1,
                from: 0,
                port: usize::MAX,
                bits: 16,
                msg_id: 0,
                deps: Arc::from([]),
            },
            SimEvent::Send {
                round: 2,
                from: 1,
                port: 0,
                bits: 8,
                msg_id: 1,
                deps: Arc::from([0u64, 5]),
            },
            SimEvent::Deliver {
                round: 1,
                from: 0,
                to: 1,
                port: 0,
                bits: 16,
                msg_id: 0,
            },
            SimEvent::Drop {
                round: 1,
                from: 2,
                to: 3,
                port: 1,
                bits: 4,
                msg_id: 2,
            },
            SimEvent::Corrupt {
                round: 1,
                from: 3,
                to: 2,
                port: 0,
                bits: 4,
                msg_id: 3,
            },
            SimEvent::Crash { round: 2, node: 5 },
            SimEvent::NodeCompute {
                round: 2,
                node: 1,
                nanos: 12345,
            },
            SimEvent::RoundEnd {
                round: 2,
                bits: 28,
                messages: 3,
                dropped: 1,
                corrupted: 1,
            },
            SimEvent::TransportSummary {
                retransmissions: 4,
                given_up: 1,
                backoff_events: 2,
            },
        ]
    }

    #[test]
    fn every_event_kind_round_trips() {
        let events = all_kinds();
        let dump = render_jsonl(&events);
        let back = parse_jsonl(&dump).expect("round trip must parse");
        assert_eq!(back, events);
        // And re-rendering is byte-identical.
        assert_eq!(render_jsonl(&back), dump);
    }

    #[test]
    fn broadcast_port_round_trips_through_minus_one() {
        let ev = SimEvent::Send {
            round: 1,
            from: 0,
            port: usize::MAX,
            bits: 8,
            msg_id: 0,
            deps: Arc::from([]),
        };
        let line = congest::JsonlTrace::render(&ev);
        assert!(line.contains(r#""port":-1"#));
        assert_eq!(parse_line(&line, 1).unwrap(), ev);
    }

    #[test]
    fn empty_and_blank_lines_are_skipped() {
        let dump = "\n{\"ev\":\"round_start\",\"round\":1}\n\n";
        assert_eq!(
            parse_jsonl(dump).unwrap(),
            vec![SimEvent::RoundStart { round: 1 }]
        );
        assert_eq!(parse_jsonl("").unwrap(), Vec::new());
    }

    #[test]
    fn unknown_event_kind_is_a_loud_error() {
        let e = parse_jsonl("{\"ev\":\"warp\",\"round\":1}").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("warp"), "{e}");
    }

    fn report_doc(dropped: u64, version: u32) -> String {
        format!(
            "{{\n  \"schema\": \"congest.run_report\",\n  \"version\": {version},\n  \
             \"rounds\": 2,\n  \"per_round_bits\": [8,8],\n  \"faults\": \
             {{\"delivered\":2,\"dropped\":{dropped},\"corrupted\":0,\"crashed\":0,\
             \"retransmissions\":3,\"given_up\":0,\"dropped_per_round\":[1,0],\
             \"retransmissions_per_round\":[2,1]}}\n}}\n"
        )
    }

    #[test]
    fn run_report_checker_accepts_consistent_documents() {
        assert_eq!(check_run_report(&report_doc(1, 2)), Vec::<String>::new());
    }

    #[test]
    fn run_report_checker_flags_tally_and_version_drift() {
        let v = check_run_report(&report_doc(2, 2));
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("dropped_per_round"), "{v:?}");
        let v = check_run_report(&report_doc(1, 99));
        assert!(v.iter().any(|m| m.contains("version 99")), "{v:?}");
        let v = check_run_report("{\"version\": 2}");
        assert!(v.iter().any(|m| m.contains("schema")), "{v:?}");
    }

    #[test]
    fn run_report_checker_flags_per_link_drift() {
        // A v3 document whose per-link series disagrees with the scalar.
        let doc = report_doc(1, 3).replace(
            "\"retransmissions_per_round\":[2,1]",
            "\"retransmissions_per_round\":[2,1],\"retransmissions_per_link\":[2,2]",
        );
        let v = check_run_report(&doc);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("retransmissions_per_link"), "{v:?}");
    }

    #[test]
    fn run_report_checker_validates_the_canonical_reports() {
        for report in bench::perf::canonical_run_reports() {
            let v = check_run_report(&report.to_json());
            assert_eq!(v, Vec::<String>::new(), "report {}", report.label);
        }
    }

    #[test]
    fn missing_field_reports_line_and_key() {
        let e = parse_jsonl("{\"ev\":\"round_start\"}").unwrap_err();
        assert!(e.message.contains("round"), "{e}");
        let two = "{\"ev\":\"round_start\",\"round\":1}\n{\"ev\":\"send\",\"round\":2}";
        assert_eq!(parse_jsonl(two).unwrap_err().line, 2);
    }

    #[test]
    fn canonical_flight_record_parses_and_checks_clean() {
        let dump = bench::perf::canonical_flight_record();
        let rec = parse_flight(&dump).expect("canonical flight record must parse");
        assert_eq!(rec.version, congest::FLIGHT_RECORD_VERSION);
        assert_eq!(rec.n, 48);
        assert!(rec.rounds > 0 && rec.messages > 0);
        assert_eq!(rec.ring_rounds, 4, "small canonical ring retains 4 rounds");
        assert_eq!(rec.samples, 32, "the 32-slot reservoir must be full");
        assert_eq!(rec.sampled_sends.len(), 32);
        assert!(!rec.top_edges.is_empty() && !rec.top_senders.is_empty());
        assert_eq!(check_flight(&dump), Vec::<String>::new());
    }

    #[test]
    fn flight_tail_renders_totals_ring_and_sketches() {
        let dump = bench::perf::canonical_flight_record();
        let rec = parse_flight(&dump).expect("canonical flight record must parse");
        let tail = render_flight_tail(&rec);
        assert!(tail.starts_with("flight record v1: n=48"), "{tail}");
        assert!(tail.contains("totals:"), "{tail}");
        assert!(tail.contains("ring: last 4 of"), "{tail}");
        assert!(tail.contains("top edges"), "{tail}");
        assert!(tail.contains("top senders"), "{tail}");
        assert!(tail.contains("samples: 32 of"), "{tail}");
    }

    #[test]
    fn flight_checker_flags_header_drift() {
        let dump = bench::perf::canonical_flight_record();
        // Claim one more retained ring round than the body closes.
        let drifted = dump.replacen(r#""ring_rounds":4"#, r#""ring_rounds":5"#, 1);
        let v = check_flight(&drifted);
        assert!(
            v.iter().any(|m| m.contains("ring rounds")),
            "expected a ring-round violation, got {v:?}"
        );
        // Claim a sample count the reservoir law contradicts.
        let drifted = dump.replacen(r#""samples":32"#, r#""samples":31"#, 1);
        let v = check_flight(&drifted);
        assert!(
            v.iter().any(|m| m.contains("reservoir")),
            "expected a reservoir violation, got {v:?}"
        );
        // A wrong schema tag fails loudly at parse time.
        let bad = dump.replacen("congest.flight_record", "congest.black_box", 1);
        let v = check_flight(&bad);
        assert!(v.iter().any(|m| m.contains("schema")), "{v:?}");
    }

    #[test]
    fn flight_sample_lines_parse_as_sends() {
        let dump = bench::perf::canonical_flight_record();
        let rec = parse_flight(&dump).expect("canonical flight record must parse");
        for ev in &rec.sampled_sends {
            assert!(matches!(ev, SimEvent::Send { .. }));
        }
        let e = parse_flight(
            "{\"schema\":\"congest.flight_record\",\"version\":1,\"n\":0,\"bandwidth\":0,\
             \"seed\":0,\"rounds\":0,\"bits\":0,\"messages\":0,\"dropped\":0,\"corrupted\":0,\
             \"delivered\":0,\"crashes\":0,\"retransmissions\":0,\"given_up\":0,\
             \"backoff_events\":0,\"ring_capacity\":4,\"ring_rounds\":0,\
             \"ring_dropped_events\":0,\"sample_capacity\":4,\"samples\":0,\"sends_seen\":0,\
             \"top_edges\":[],\"top_senders\":[]}\n{\"ev\":\"sample\",\"round\":1}",
        )
        .unwrap_err();
        assert_eq!(e.line, 2, "a malformed sample line reports its line");
    }

    #[test]
    fn flight_golden_matches_generator() {
        // The committed golden (tests/golden/flight_record.jsonl at the
        // workspace root) must match the generator byte-for-byte; the
        // root-package `flight_record` test owns regeneration
        // (UPDATE_GOLDEN=1 cargo test --test flight_record).
        let path = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../../tests/golden/flight_record.jsonl");
        let want = std::fs::read_to_string(&path).unwrap_or_else(|_| {
            panic!(
                "missing golden {}; regenerate with UPDATE_GOLDEN=1 cargo test --test flight_record",
                path.display()
            )
        });
        assert_eq!(
            bench::perf::canonical_flight_record(),
            want,
            "flight record drifted from its golden; if intentional, bump \
             FLIGHT_RECORD_VERSION and regenerate with UPDATE_GOLDEN=1"
        );
    }
}
