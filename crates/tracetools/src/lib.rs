//! Offline trace tooling for the `congest` simulators.
//!
//! The simulators export their structured event stream as JSON lines
//! (one [`SimEvent`] per line, rendered by
//! [`JsonlTrace::render`](congest::JsonlTrace::render)). This crate is the
//! other direction: [`parse_jsonl`] reads such a dump back into event
//! values so the [`congest::obsv::analyze`] consumers — invariant checker,
//! critical-path extractor, heatmap, diff — run against traces recorded in
//! a different process (or a different machine). The `congest-trace`
//! binary wraps the whole round trip as a command-line toolkit.
//!
//! The parser is hand-rolled against the exact renderer format (the repo
//! vendors no JSON library by design): flat objects, known keys, the only
//! nested value being the `deps` id array on `send` lines. Unknown `ev`
//! tags are an error — a trace from a newer schema should fail loudly, not
//! be silently half-read.

#![warn(missing_docs)]

use congest::SimEvent;
use std::sync::Arc;

/// A parse failure: line number (1-based) plus a description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Extracts the raw text of a scalar field (`"key":value`) from a flat
/// JSON object line. Stops at `,`, `}` or `]`; quotes are stripped.
fn raw_field<'a>(obj: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = obj.find(&pat)? + pat.len();
    let rest = obj[start..].trim_start();
    if let Some(stripped) = rest.strip_prefix('"') {
        let end = stripped.find('"')?;
        Some(&stripped[..end])
    } else {
        let end = rest.find([',', '}', ']']).unwrap_or(rest.len());
        Some(rest[..end].trim())
    }
}

fn num<T: std::str::FromStr>(obj: &str, key: &str, line: usize) -> Result<T, ParseError> {
    raw_field(obj, key)
        .ok_or_else(|| err(line, format!("missing field \"{key}\"")))?
        .parse()
        .map_err(|_| err(line, format!("field \"{key}\" is not a number")))
}

/// A port field: `-1` encodes the broadcast marker `usize::MAX`.
fn port(obj: &str, line: usize) -> Result<usize, ParseError> {
    let raw = raw_field(obj, "port").ok_or_else(|| err(line, "missing field \"port\""))?;
    if raw == "-1" {
        Ok(usize::MAX)
    } else {
        raw.parse()
            .map_err(|_| err(line, "field \"port\" is not a number"))
    }
}

/// The `deps` id array of a `send` line.
fn deps(obj: &str, line: usize) -> Result<Arc<[u64]>, ParseError> {
    let pat = "\"deps\":[";
    let start = obj
        .find(pat)
        .ok_or_else(|| err(line, "missing field \"deps\""))?
        + pat.len();
    let rest = &obj[start..];
    let end = rest
        .find(']')
        .ok_or_else(|| err(line, "unterminated \"deps\" array"))?;
    let body = &rest[..end];
    if body.trim().is_empty() {
        return Ok(Arc::from([]));
    }
    let ids: Result<Vec<u64>, _> = body.split(',').map(|s| s.trim().parse()).collect();
    ids.map(Arc::from)
        .map_err(|_| err(line, "non-numeric id in \"deps\""))
}

fn delivery(
    obj: &str,
    line: usize,
) -> Result<(usize, usize, usize, usize, usize, u64), ParseError> {
    Ok((
        num(obj, "round", line)?,
        num(obj, "from", line)?,
        num(obj, "to", line)?,
        port(obj, line)?,
        num(obj, "bits", line)?,
        num(obj, "msg_id", line)?,
    ))
}

/// Parses one JSONL line back into the event it was rendered from.
pub fn parse_line(obj: &str, line: usize) -> Result<SimEvent, ParseError> {
    let ev = raw_field(obj, "ev").ok_or_else(|| err(line, "missing field \"ev\""))?;
    match ev {
        "meta" => Ok(SimEvent::Meta {
            n: num(obj, "n", line)?,
            bandwidth_bits: num(obj, "bandwidth", line)?,
            seed: num(obj, "seed", line)?,
        }),
        "phase" => Ok(SimEvent::Phase {
            name: raw_field(obj, "name")
                .ok_or_else(|| err(line, "missing field \"name\""))?
                .into(),
            repetition: num(obj, "repetition", line)?,
        }),
        "round_start" => Ok(SimEvent::RoundStart {
            round: num(obj, "round", line)?,
        }),
        "round_end" => Ok(SimEvent::RoundEnd {
            round: num(obj, "round", line)?,
            bits: num(obj, "bits", line)?,
            messages: num(obj, "messages", line)?,
            dropped: num(obj, "dropped", line)?,
            corrupted: num(obj, "corrupted", line)?,
        }),
        "send" => Ok(SimEvent::Send {
            round: num(obj, "round", line)?,
            from: num(obj, "from", line)?,
            port: port(obj, line)?,
            bits: num(obj, "bits", line)?,
            msg_id: num(obj, "msg_id", line)?,
            deps: deps(obj, line)?,
        }),
        "deliver" => {
            let (round, from, to, port, bits, msg_id) = delivery(obj, line)?;
            Ok(SimEvent::Deliver {
                round,
                from,
                to,
                port,
                bits,
                msg_id,
            })
        }
        "drop" => {
            let (round, from, to, port, bits, msg_id) = delivery(obj, line)?;
            Ok(SimEvent::Drop {
                round,
                from,
                to,
                port,
                bits,
                msg_id,
            })
        }
        "corrupt" => {
            let (round, from, to, port, bits, msg_id) = delivery(obj, line)?;
            Ok(SimEvent::Corrupt {
                round,
                from,
                to,
                port,
                bits,
                msg_id,
            })
        }
        "crash" => Ok(SimEvent::Crash {
            round: num(obj, "round", line)?,
            node: num(obj, "node", line)?,
        }),
        "compute" => Ok(SimEvent::NodeCompute {
            round: num(obj, "round", line)?,
            node: num(obj, "node", line)?,
            nanos: num(obj, "nanos", line)?,
        }),
        "transport" => Ok(SimEvent::TransportSummary {
            retransmissions: num(obj, "retransmissions", line)?,
            given_up: num(obj, "given_up", line)?,
            backoff_events: num(obj, "backoff_events", line)?,
        }),
        other => Err(err(line, format!("unknown event kind \"{other}\""))),
    }
}

/// Parses a whole JSONL dump (empty lines skipped) back into the event
/// stream it was rendered from. The round trip through
/// [`JsonlTrace::render`](congest::JsonlTrace::render) is exact.
pub fn parse_jsonl(dump: &str) -> Result<Vec<SimEvent>, ParseError> {
    dump.lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(i, l)| parse_line(l.trim(), i + 1))
        .collect()
}

/// Renders an event stream as a JSONL dump (the inverse of
/// [`parse_jsonl`]; trailing newline included when non-empty).
pub fn render_jsonl(events: &[SimEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&congest::JsonlTrace::render(ev));
        out.push('\n');
    }
    out
}

/// Extracts a `"key": [..]` numeric array from a run-report document.
/// Returns `None` when the key is absent.
fn u64_array(doc: &str, key: &str) -> Option<Vec<u64>> {
    let pat = format!("\"{key}\":");
    let start = doc.find(&pat)? + pat.len();
    let rest = doc[start..].trim_start().strip_prefix('[')?;
    let end = rest.find(']')?;
    let body = rest[..end].trim();
    if body.is_empty() {
        return Some(Vec::new());
    }
    body.split(',').map(|s| s.trim().parse().ok()).collect()
}

/// Structural invariant checks for a schema-versioned run-report JSON
/// document (`congest.run_report`). Returns human-readable violations;
/// empty means the document is internally consistent:
///
/// * schema tag and version are present, and the version is one this
///   toolkit understands;
/// * braces and brackets balance (cheap well-formedness);
/// * the scalar fault tallies match their per-round and per-link series
///   (`dropped` == sum of `dropped_per_round`, `retransmissions` == sum
///   of both `retransmissions_per_round` and `retransmissions_per_link`)
///   when the series are present;
/// * the `per_round_bits` series has one entry per executed round.
pub fn check_run_report(doc: &str) -> Vec<String> {
    let mut out = Vec::new();
    match raw_field(doc, "schema") {
        None => out.push("missing \"schema\" field".into()),
        Some(s) if s != congest::RUN_REPORT_SCHEMA => {
            out.push(format!(
                "schema \"{s}\" is not \"{}\"",
                congest::RUN_REPORT_SCHEMA
            ));
        }
        Some(_) => {}
    }
    match raw_field(doc, "version").and_then(|v| v.parse::<u32>().ok()) {
        None => out.push("missing or non-numeric \"version\" field".into()),
        Some(v) if v == 0 || v > congest::RUN_REPORT_VERSION => out.push(format!(
            "version {v} outside the supported range 1..={}",
            congest::RUN_REPORT_VERSION
        )),
        Some(_) => {}
    }
    if doc.matches('{').count() != doc.matches('}').count()
        || doc.matches('[').count() != doc.matches(']').count()
    {
        out.push("unbalanced braces or brackets".into());
    }
    let scalar = |key: &str| raw_field(doc, key).and_then(|v| v.parse::<u64>().ok());
    for (total_key, series_key) in [
        ("dropped", "dropped_per_round"),
        ("retransmissions", "retransmissions_per_round"),
        ("retransmissions", "retransmissions_per_link"),
    ] {
        if let (Some(total), Some(series)) = (scalar(total_key), u64_array(doc, series_key)) {
            let sum: u64 = series.iter().sum();
            if !series.is_empty() && sum != total {
                out.push(format!(
                    "\"{total_key}\" is {total} but \"{series_key}\" sums to {sum}"
                ));
            }
        }
    }
    if let (Some(rounds), Some(series)) = (scalar("rounds"), u64_array(doc, "per_round_bits")) {
        if series.len() as u64 != rounds {
            out.push(format!(
                "\"per_round_bits\" has {} entries but \"rounds\" is {rounds}",
                series.len()
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_kinds() -> Vec<SimEvent> {
        vec![
            SimEvent::Meta {
                n: 9,
                bandwidth_bits: 32,
                seed: 7,
            },
            SimEvent::Phase {
                name: "phase1".into(),
                repetition: 3,
            },
            SimEvent::RoundStart { round: 1 },
            SimEvent::Send {
                round: 1,
                from: 0,
                port: usize::MAX,
                bits: 16,
                msg_id: 0,
                deps: Arc::from([]),
            },
            SimEvent::Send {
                round: 2,
                from: 1,
                port: 0,
                bits: 8,
                msg_id: 1,
                deps: Arc::from([0u64, 5]),
            },
            SimEvent::Deliver {
                round: 1,
                from: 0,
                to: 1,
                port: 0,
                bits: 16,
                msg_id: 0,
            },
            SimEvent::Drop {
                round: 1,
                from: 2,
                to: 3,
                port: 1,
                bits: 4,
                msg_id: 2,
            },
            SimEvent::Corrupt {
                round: 1,
                from: 3,
                to: 2,
                port: 0,
                bits: 4,
                msg_id: 3,
            },
            SimEvent::Crash { round: 2, node: 5 },
            SimEvent::NodeCompute {
                round: 2,
                node: 1,
                nanos: 12345,
            },
            SimEvent::RoundEnd {
                round: 2,
                bits: 28,
                messages: 3,
                dropped: 1,
                corrupted: 1,
            },
            SimEvent::TransportSummary {
                retransmissions: 4,
                given_up: 1,
                backoff_events: 2,
            },
        ]
    }

    #[test]
    fn every_event_kind_round_trips() {
        let events = all_kinds();
        let dump = render_jsonl(&events);
        let back = parse_jsonl(&dump).expect("round trip must parse");
        assert_eq!(back, events);
        // And re-rendering is byte-identical.
        assert_eq!(render_jsonl(&back), dump);
    }

    #[test]
    fn broadcast_port_round_trips_through_minus_one() {
        let ev = SimEvent::Send {
            round: 1,
            from: 0,
            port: usize::MAX,
            bits: 8,
            msg_id: 0,
            deps: Arc::from([]),
        };
        let line = congest::JsonlTrace::render(&ev);
        assert!(line.contains(r#""port":-1"#));
        assert_eq!(parse_line(&line, 1).unwrap(), ev);
    }

    #[test]
    fn empty_and_blank_lines_are_skipped() {
        let dump = "\n{\"ev\":\"round_start\",\"round\":1}\n\n";
        assert_eq!(
            parse_jsonl(dump).unwrap(),
            vec![SimEvent::RoundStart { round: 1 }]
        );
        assert_eq!(parse_jsonl("").unwrap(), Vec::new());
    }

    #[test]
    fn unknown_event_kind_is_a_loud_error() {
        let e = parse_jsonl("{\"ev\":\"warp\",\"round\":1}").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("warp"), "{e}");
    }

    fn report_doc(dropped: u64, version: u32) -> String {
        format!(
            "{{\n  \"schema\": \"congest.run_report\",\n  \"version\": {version},\n  \
             \"rounds\": 2,\n  \"per_round_bits\": [8,8],\n  \"faults\": \
             {{\"delivered\":2,\"dropped\":{dropped},\"corrupted\":0,\"crashed\":0,\
             \"retransmissions\":3,\"given_up\":0,\"dropped_per_round\":[1,0],\
             \"retransmissions_per_round\":[2,1]}}\n}}\n"
        )
    }

    #[test]
    fn run_report_checker_accepts_consistent_documents() {
        assert_eq!(check_run_report(&report_doc(1, 2)), Vec::<String>::new());
    }

    #[test]
    fn run_report_checker_flags_tally_and_version_drift() {
        let v = check_run_report(&report_doc(2, 2));
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("dropped_per_round"), "{v:?}");
        let v = check_run_report(&report_doc(1, 99));
        assert!(v.iter().any(|m| m.contains("version 99")), "{v:?}");
        let v = check_run_report("{\"version\": 2}");
        assert!(v.iter().any(|m| m.contains("schema")), "{v:?}");
    }

    #[test]
    fn run_report_checker_flags_per_link_drift() {
        // A v3 document whose per-link series disagrees with the scalar.
        let doc = report_doc(1, 3).replace(
            "\"retransmissions_per_round\":[2,1]",
            "\"retransmissions_per_round\":[2,1],\"retransmissions_per_link\":[2,2]",
        );
        let v = check_run_report(&doc);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("retransmissions_per_link"), "{v:?}");
    }

    #[test]
    fn run_report_checker_validates_the_canonical_reports() {
        for report in bench::perf::canonical_run_reports() {
            let v = check_run_report(&report.to_json());
            assert_eq!(v, Vec::<String>::new(), "report {}", report.label);
        }
    }

    #[test]
    fn missing_field_reports_line_and_key() {
        let e = parse_jsonl("{\"ev\":\"round_start\"}").unwrap_err();
        assert!(e.message.contains("round"), "{e}");
        let two = "{\"ev\":\"round_start\",\"round\":1}\n{\"ev\":\"send\",\"round\":2}";
        assert_eq!(parse_jsonl(two).unwrap_err().line, 2);
    }
}
