//! Referee test for the critical-path analyzer (the ISSUE 5 acceptance
//! gate): on the canonical planted-`C_4` even-cycle run, an *independent*
//! reconstruction of the happens-before DAG — built here from nothing but
//! the `Send` events, with its own brute-force longest-path search — must
//! agree with `congest::obsv::critical_path` on every segment, and the
//! chains the analyzer reports must be valid causal chains achieving the
//! optimum. The trace is also round-tripped through the JSONL
//! serialization first, so the referee exercises exactly what the
//! `congest-trace` binary would read off disk.

use congest::SimEvent;
use std::collections::HashMap;

/// One segment's sends, keyed by msg_id, plus its phase label.
struct Segment {
    phase: String,
    repetition: usize,
    /// msg_id -> (bits, deps)
    sends: HashMap<u64, (u64, Vec<u64>)>,
}

/// Splits a trace on `Meta` headers, labeling each segment with the
/// nearest preceding `Phase` marker — independent of the analyzer's own
/// segmentation code.
fn split_segments(events: &[SimEvent]) -> Vec<Segment> {
    let mut out: Vec<Segment> = Vec::new();
    let mut pending: Option<(String, usize)> = None;
    for ev in events {
        match ev {
            SimEvent::Phase { name, repetition } => {
                pending = Some((name.to_string(), *repetition));
            }
            SimEvent::Meta { .. } => {
                let (phase, repetition) = pending.take().unwrap_or(("run".into(), 0));
                out.push(Segment {
                    phase,
                    repetition,
                    sends: HashMap::new(),
                });
            }
            SimEvent::Send {
                bits, msg_id, deps, ..
            } => {
                let seg = out.last_mut().expect("send before any Meta header");
                let prev = seg
                    .sends
                    .insert(*msg_id, (*bits as u64, deps.iter().copied().collect()));
                assert!(prev.is_none(), "duplicate msg_id {msg_id} in a segment");
            }
            _ => {}
        }
    }
    out
}

/// Brute-force longest weighted path ending at `id`: bits of the message
/// plus the heaviest chain among its causal dependencies. Memoized
/// recursion — correct by induction, no relation to the analyzer's
/// streaming DP.
fn longest_ending_at(
    id: u64,
    sends: &HashMap<u64, (u64, Vec<u64>)>,
    memo: &mut HashMap<u64, u64>,
) -> u64 {
    if let Some(&w) = memo.get(&id) {
        return w;
    }
    let (bits, deps) = &sends[&id];
    let best_dep = deps
        .iter()
        .filter(|d| sends.contains_key(d))
        .map(|d| longest_ending_at(*d, sends, memo))
        .max()
        .unwrap_or(0);
    let w = bits + best_dep;
    memo.insert(id, w);
    w
}

#[test]
fn analyzer_critical_path_matches_brute_force_on_the_canonical_run() {
    let (_, events) = bench::perf::canonical_fault_free_traced();
    assert!(!events.is_empty(), "canonical run recorded no events");

    // Round-trip through the on-disk format first: the analyzer input is
    // what `congest-trace` would parse back from a written trace.
    let events = tracetools::parse_jsonl(&tracetools::render_jsonl(&events))
        .expect("canonical trace must round-trip");

    let violations = congest::obsv::check(&events);
    assert!(
        violations.is_empty(),
        "trace invariants violated: {violations:?}"
    );

    let summary = congest::obsv::critical_path(&events);
    let segments = split_segments(&events);
    assert_eq!(
        summary.segments.len(),
        segments.len(),
        "analyzer and referee disagree on segmentation"
    );

    let mut saw_messages = false;
    for (seg, ours) in summary.segments.iter().zip(&segments) {
        assert_eq!(seg.phase, ours.phase);
        assert_eq!(seg.repetition, ours.repetition);
        assert_eq!(seg.messages, ours.sends.len() as u64);

        // Brute-force optimum over every possible chain endpoint.
        let mut memo = HashMap::new();
        let brute: u64 = ours
            .sends
            .keys()
            .map(|&id| longest_ending_at(id, &ours.sends, &mut memo))
            .max()
            .unwrap_or(0);
        assert_eq!(
            seg.path_bits, brute,
            "segment {}/{}: analyzer path_bits != brute-force longest path",
            seg.phase, seg.repetition
        );

        // The reported chain must be a real causal chain of that weight.
        assert_eq!(seg.chain.len(), seg.path_len);
        let chain_bits: u64 = seg.chain.iter().map(|h| h.bits as u64).sum();
        assert_eq!(chain_bits, seg.path_bits, "chain weight mismatch");
        for pair in seg.chain.windows(2) {
            let (_, deps) = &ours.sends[&pair[1].msg_id];
            assert!(
                deps.contains(&pair[0].msg_id),
                "chain hop {} is not a causal dep of {}",
                pair[0].msg_id,
                pair[1].msg_id
            );
        }
        if seg.messages > 0 {
            saw_messages = true;
        }
    }
    assert!(saw_messages, "canonical run sent no messages at all");

    // Phase attribution: both detector phases appear, and each phase
    // aggregate is exactly the max over its segments.
    for want in ["phase1", "phase2"] {
        let agg = summary
            .phases
            .iter()
            .find(|p| p.phase == want)
            .unwrap_or_else(|| panic!("phase {want} missing from summary"));
        let max_bits = summary
            .segments
            .iter()
            .filter(|s| s.phase == want)
            .map(|s| s.path_bits)
            .max()
            .unwrap_or(0);
        assert_eq!(agg.max_path_bits, max_bits);
    }
    // Phase II does the detecting on this instance; its critical path is
    // a non-trivial dependent-message chain.
    let p2 = summary.phases.iter().find(|p| p.phase == "phase2").unwrap();
    assert!(p2.max_path_bits > 0 && p2.max_path_len > 1);
}
