//! Property-based tests of the communication-complexity substrate.

use commlb::{DisjointnessInstance, Party, ShipInput, TwoPartyProtocol};
use proptest::prelude::*;

proptest! {
    #[test]
    fn ship_input_always_correct_for_disjointness(
        x in proptest::collection::vec(any::<bool>(), 1..64),
        y in proptest::collection::vec(any::<bool>(), 1..64)
    ) {
        let n = x.len().min(y.len());
        let mut p = ShipInput::new(|a: &[bool], b: &[bool]| {
            !a.iter().zip(b).any(|(&u, &v)| u && v)
        });
        let r = p.run(&x[..n], &y[..n]);
        let expected = !x[..n].iter().zip(&y[..n]).any(|(&u, &v)| u && v);
        prop_assert_eq!(r.output, expected);
        prop_assert_eq!(r.bits_exchanged, n as u64 + 1);
    }

    #[test]
    fn disjointness_instance_ground_truth(
        n in 2usize..10,
        pairs in proptest::collection::vec((0usize..10, 0usize..10, any::<bool>()), 0..30)
    ) {
        let mut inst = DisjointnessInstance::new(n);
        for &(i, j, to_x) in &pairs {
            let (i, j) = (i % n, j % n);
            if to_x {
                inst.add_x(i, j);
            } else {
                inst.add_y(i, j);
            }
        }
        let xs: std::collections::HashSet<_> = inst.x_pairs().into_iter().collect();
        let ys: std::collections::HashSet<_> = inst.y_pairs().into_iter().collect();
        prop_assert_eq!(inst.disjoint(), xs.intersection(&ys).count() == 0);
    }

    #[test]
    fn simulation_charges_are_subset_of_total(
        mask in proptest::collection::vec(0u8..3, 3..12)
    ) {
        use congest::{Bandwidth, Decision, Inbox, NodeContext, Outbox, Outgoing};
        use rand_chacha::ChaCha8Rng;

        struct OneShot {
            done: bool,
        }
        impl congest::NodeAlgorithm for OneShot {
            type Msg = u8;
            fn init(&mut self, _c: &NodeContext, _r: &mut ChaCha8Rng) -> Outbox<u8> {
                vec![Outgoing::Broadcast(7)]
            }
            fn on_round(&mut self, _c: &NodeContext, _i: &Inbox<u8>, _r: &mut ChaCha8Rng) -> Outbox<u8> {
                self.done = true;
                Vec::new()
            }
            fn halted(&self) -> bool {
                self.done
            }
            fn decision(&self) -> Decision {
                Decision::Accept
            }
        }

        let n = mask.len();
        let g = graphlib::generators::cycle(n);
        let parts: Vec<Party> = mask
            .iter()
            .map(|&m| match m {
                0 => Party::Alice,
                1 => Party::Bob,
                _ => Party::Shared,
            })
            .collect();
        let (outcome, rep) = commlb::simulate_two_party(
            &g,
            &parts,
            Bandwidth::Bits(8),
            5,
            0,
            |_| OneShot { done: false },
        )
        .unwrap();
        prop_assert!(rep.bits_exchanged <= outcome.stats.total_bits);
        // Cut edge counts are bounded by the directed edge count.
        prop_assert!(rep.cut_size() <= 2 * g.m());
        // All-shared partitions cost nothing.
        if parts.iter().all(|&p| p == Party::Shared) {
            prop_assert_eq!(rep.bits_exchanged, 0);
        }
    }
}
