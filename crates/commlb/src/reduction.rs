//! The §3.3 simulation argument, made executable.
//!
//! Alice simulates her part `V_A` and the shared part `U`; Bob simulates
//! `V_B` and `U`. Each player knows every edge except those internal to the
//! other player's exclusive part, so the only messages that must actually
//! be communicated are those *leaving an exclusive part*: traffic from a
//! `V_A` node to any node Bob simulates (`V_B ∪ U`) must be shipped to Bob,
//! and symmetrically for `V_B`. Shared-part nodes are stepped identically
//! by both players (public randomness), so their outgoing messages cost
//! nothing.
//!
//! [`simulate_two_party`] runs a CONGEST algorithm once on the full graph
//! and charges exactly those directed edges, yielding the bits a faithful
//! two-party simulation would exchange — the left-hand side of the
//! Theorem 1.2 inequality `R · (cut) · B >= Ω(n²)`.

use crate::protocol::Party;
use congest::{NodeAlgorithm, Outcome, SimError, Simulation};
use graphlib::Graph;

/// Cost report of a two-party simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimulationReport {
    /// Rounds of the simulated CONGEST algorithm.
    pub rounds: usize,
    /// Bits Alice must send Bob plus bits Bob must send Alice.
    pub bits_exchanged: u64,
    /// Directed edges out of Alice's exclusive part into Bob's simulation
    /// domain (`V_A -> V_B ∪ U`).
    pub cut_out_of_alice: usize,
    /// Directed edges out of Bob's exclusive part (`V_B -> V_A ∪ U`).
    pub cut_out_of_bob: usize,
}

impl SimulationReport {
    /// Total directed cut size — the `O(k n^{1/k})` quantity of §3.2.
    pub fn cut_size(&self) -> usize {
        self.cut_out_of_alice + self.cut_out_of_bob
    }
}

/// Computes, from a finished run, the bits a two-party simulation with the
/// given node partition would have exchanged.
pub fn simulation_cost(g: &Graph, outcome: &Outcome, parts: &[Party]) -> SimulationReport {
    assert_eq!(parts.len(), g.n());
    let mut bits = 0u64;
    let mut cut_a = 0usize;
    let mut cut_b = 0usize;
    for u in 0..g.n() {
        for (p, &v) in g.neighbors(u).iter().enumerate() {
            let v = v as usize;
            let charged = match (parts[u], parts[v]) {
                // Out of an exclusive part into the other player's domain.
                (Party::Alice, Party::Bob) | (Party::Alice, Party::Shared) => {
                    cut_a += 1;
                    true
                }
                (Party::Bob, Party::Alice) | (Party::Bob, Party::Shared) => {
                    cut_b += 1;
                    true
                }
                _ => false,
            };
            if charged {
                bits += outcome.stats.edge_bits(u, p);
            }
        }
    }
    SimulationReport {
        rounds: outcome.stats.rounds,
        bits_exchanged: bits,
        cut_out_of_alice: cut_a,
        cut_out_of_bob: cut_b,
    }
}

/// Runs `make`-constructed nodes on `g` under the given engine settings and
/// returns both the CONGEST outcome and the two-party simulation cost for
/// the partition `parts`.
#[allow(clippy::too_many_arguments)]
pub fn simulate_two_party<A, F>(
    g: &Graph,
    parts: &[Party],
    bandwidth: congest::Bandwidth,
    max_rounds: usize,
    seed: u64,
    make: F,
) -> Result<(Outcome, SimulationReport), SimError>
where
    A: NodeAlgorithm,
    A::Msg: std::hash::Hash,
    F: Fn(usize) -> A + Sync,
{
    let outcome = Simulation::on(g)
        .bandwidth(bandwidth)
        .max_rounds(max_rounds)
        .seed(seed)
        .run(make)?
        .into_outcome();
    let report = simulation_cost(g, &outcome, parts);
    Ok((outcome, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use congest::{Bandwidth, Decision, Inbox, NodeContext, Outbox, Outgoing};
    use graphlib::generators;
    use rand_chacha::ChaCha8Rng;

    /// Every node broadcasts 8 bits once and halts.
    struct OneShot {
        done: bool,
    }

    impl NodeAlgorithm for OneShot {
        type Msg = u8;
        fn init(&mut self, _ctx: &NodeContext, _rng: &mut ChaCha8Rng) -> Outbox<u8> {
            vec![Outgoing::Broadcast(0xAB)]
        }
        fn on_round(
            &mut self,
            _ctx: &NodeContext,
            _inbox: &Inbox<u8>,
            _rng: &mut ChaCha8Rng,
        ) -> Outbox<u8> {
            self.done = true;
            Vec::new()
        }
        fn halted(&self) -> bool {
            self.done
        }
        fn decision(&self) -> Decision {
            Decision::Accept
        }
    }

    #[test]
    fn charges_only_exclusive_outflow() {
        // Path 0-1-2 with parts [Alice, Shared, Bob].
        let g = generators::path(3);
        let parts = [Party::Alice, Party::Shared, Party::Bob];
        let (_, rep) = simulate_two_party(&g, &parts, Bandwidth::Bits(8), 10, 0, |_| OneShot {
            done: false,
        })
        .unwrap();
        // Directed charged edges: 0->1 (Alice->Shared), 2->1 (Bob->Shared).
        assert_eq!(rep.cut_out_of_alice, 1);
        assert_eq!(rep.cut_out_of_bob, 1);
        // Each node broadcast 8 bits once on each port; two charged edges.
        assert_eq!(rep.bits_exchanged, 16);
    }

    #[test]
    fn shared_traffic_is_free() {
        let g = generators::path(2);
        let parts = [Party::Shared, Party::Shared];
        let (_, rep) = simulate_two_party(&g, &parts, Bandwidth::Bits(8), 10, 0, |_| OneShot {
            done: false,
        })
        .unwrap();
        assert_eq!(rep.bits_exchanged, 0);
        assert_eq!(rep.cut_size(), 0);
    }

    #[test]
    fn alice_bob_edge_charged_both_ways() {
        let g = generators::path(2);
        let parts = [Party::Alice, Party::Bob];
        let (_, rep) = simulate_two_party(&g, &parts, Bandwidth::Bits(8), 10, 0, |_| OneShot {
            done: false,
        })
        .unwrap();
        assert_eq!(rep.cut_out_of_alice, 1);
        assert_eq!(rep.cut_out_of_bob, 1);
        assert_eq!(rep.bits_exchanged, 16);
    }
}
