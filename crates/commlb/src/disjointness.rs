//! Set disjointness over the universe `[n]²` (the instance the §3.3
//! reduction consumes).
//!
//! `DISJ(X, Y) = 1` iff `X ∩ Y = ∅`. The celebrated lower bound
//! [KS92, Raz92] says any (even randomized) protocol needs `Ω(|universe|)`
//! bits; we expose that bound as a formula — the reduction turns it into
//! the round lower bound of Theorem 1.2.

use rand::Rng;

/// A disjointness instance over the universe `[n] × [n]`, stored as bit
/// matrices in row-major order.
#[derive(Debug, Clone)]
pub struct DisjointnessInstance {
    /// Side length `n` of the `[n]²` universe.
    pub n: usize,
    /// Alice's set as a bit vector of length `n²`.
    pub x: Vec<bool>,
    /// Bob's set as a bit vector of length `n²`.
    pub y: Vec<bool>,
}

impl DisjointnessInstance {
    /// An empty instance.
    pub fn new(n: usize) -> Self {
        DisjointnessInstance {
            n,
            x: vec![false; n * n],
            y: vec![false; n * n],
        }
    }

    /// Index of pair `(i, j)`.
    pub fn idx(&self, i: usize, j: usize) -> usize {
        assert!(i < self.n && j < self.n);
        i * self.n + j
    }

    /// Inserts `(i, j)` into Alice's set.
    pub fn add_x(&mut self, i: usize, j: usize) {
        let k = self.idx(i, j);
        self.x[k] = true;
    }

    /// Inserts `(i, j)` into Bob's set.
    pub fn add_y(&mut self, i: usize, j: usize) {
        let k = self.idx(i, j);
        self.y[k] = true;
    }

    /// Ground truth: whether the sets are disjoint.
    pub fn disjoint(&self) -> bool {
        self.x.iter().zip(&self.y).all(|(&a, &b)| !(a && b))
    }

    /// Alice's pairs.
    pub fn x_pairs(&self) -> Vec<(usize, usize)> {
        self.pairs(&self.x)
    }

    /// Bob's pairs.
    pub fn y_pairs(&self) -> Vec<(usize, usize)> {
        self.pairs(&self.y)
    }

    fn pairs(&self, v: &[bool]) -> Vec<(usize, usize)> {
        v.iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(k, _)| (k / self.n, k % self.n))
            .collect()
    }

    /// A random instance where each pair enters each set independently
    /// with probability `p`.
    pub fn random<R: Rng>(n: usize, p: f64, rng: &mut R) -> Self {
        let mut inst = Self::new(n);
        for k in 0..n * n {
            inst.x[k] = rng.gen_bool(p);
            inst.y[k] = rng.gen_bool(p);
        }
        inst
    }

    /// A random instance conditioned on being disjoint (rejection-free:
    /// each element goes to at most one player).
    pub fn random_disjoint<R: Rng>(n: usize, p: f64, rng: &mut R) -> Self {
        let mut inst = Self::new(n);
        for k in 0..n * n {
            if rng.gen_bool(p) {
                if rng.gen_bool(0.5) {
                    inst.x[k] = true;
                } else {
                    inst.y[k] = true;
                }
            }
        }
        inst
    }

    /// A random instance with exactly one planted intersection point.
    pub fn random_intersecting<R: Rng>(n: usize, p: f64, rng: &mut R) -> Self {
        let mut inst = Self::random_disjoint(n, p, rng);
        let i = rng.gen_range(0..n);
        let j = rng.gen_range(0..n);
        inst.add_x(i, j);
        inst.add_y(i, j);
        inst
    }
}

/// The randomized communication lower bound for disjointness over a
/// universe of size `u`, in bits: `Ω(u)` by Kalyanasundaram–Schnitger /
/// Razborov. We report it with constant 1 (`u` bits); the experiments only
/// need the linear shape, and any positive constant shifts the implied
/// round bound by that same constant.
pub fn disjointness_lower_bound_bits(universe: usize) -> f64 {
    universe as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn ground_truth() {
        let mut inst = DisjointnessInstance::new(3);
        assert!(inst.disjoint());
        inst.add_x(1, 2);
        inst.add_y(2, 1);
        assert!(inst.disjoint());
        inst.add_y(1, 2);
        assert!(!inst.disjoint());
        assert_eq!(inst.x_pairs(), vec![(1, 2)]);
    }

    #[test]
    fn random_disjoint_is_disjoint() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..20 {
            let inst = DisjointnessInstance::random_disjoint(8, 0.3, &mut rng);
            assert!(inst.disjoint());
        }
    }

    #[test]
    fn random_intersecting_intersects() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..20 {
            let inst = DisjointnessInstance::random_intersecting(8, 0.3, &mut rng);
            assert!(!inst.disjoint());
        }
    }

    #[test]
    fn lower_bound_is_linear() {
        let a = disjointness_lower_bound_bits(100);
        let b = disjointness_lower_bound_bits(1000);
        assert!((b / a - 10.0).abs() < 1e-9);
    }
}
