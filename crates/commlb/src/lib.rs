//! # commlb — two-party communication complexity substrate
//!
//! The superlinear lower bound of Theorem 1.2 is a reduction from set
//! disjointness over `[n]²` (§3.3): a fast `H_k`-detection algorithm would
//! yield a too-cheap disjointness protocol. This crate provides the pieces:
//! protocol/bit accounting ([`protocol`]), disjointness instances and the
//! `Ω(n²)` bound formula ([`disjointness`]), and the executable simulation
//! argument that charges exactly the cut-crossing CONGEST traffic to the
//! two players ([`reduction`]).

#![warn(missing_docs)]

pub mod disjointness;
pub mod protocol;
pub mod reduction;

pub use disjointness::{disjointness_lower_bound_bits, DisjointnessInstance};
pub use protocol::{Party, ProtocolResult, ShipInput, TwoPartyProtocol};
pub use reduction::{simulate_two_party, simulation_cost, SimulationReport};
