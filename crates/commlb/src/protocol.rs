//! Two-party communication protocols with bit accounting.

/// Which party a network node is simulated by in the §3.3 reduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Party {
    /// Simulated only by Alice (her input edges are internal to this part).
    Alice,
    /// Simulated only by Bob.
    Bob,
    /// Simulated by both players (no private input touches this part).
    Shared,
}

/// A (deterministic or randomized) two-party protocol over boolean-vector
/// inputs; returns the output bit and the number of bits exchanged.
pub trait TwoPartyProtocol {
    /// Runs the protocol on inputs `x` (Alice) and `y` (Bob).
    fn run(&mut self, x: &[bool], y: &[bool]) -> ProtocolResult;
}

/// Outcome of a protocol execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtocolResult {
    /// The computed output.
    pub output: bool,
    /// Total bits exchanged between the players.
    pub bits_exchanged: u64,
}

/// The trivial protocol: Alice ships her whole input to Bob, who computes
/// the function locally. Always correct; costs `|x|` bits (plus one output
/// bit back).
pub struct ShipInput<F: Fn(&[bool], &[bool]) -> bool> {
    f: F,
}

impl<F: Fn(&[bool], &[bool]) -> bool> ShipInput<F> {
    /// A ship-everything protocol for the function `f`.
    pub fn new(f: F) -> Self {
        ShipInput { f }
    }
}

impl<F: Fn(&[bool], &[bool]) -> bool> TwoPartyProtocol for ShipInput<F> {
    fn run(&mut self, x: &[bool], y: &[bool]) -> ProtocolResult {
        ProtocolResult {
            output: (self.f)(x, y),
            bits_exchanged: x.len() as u64 + 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ship_input_cost_and_output() {
        let mut p = ShipInput::new(|x, y| x.iter().zip(y).any(|(&a, &b)| a && b));
        let r = p.run(&[true, false, true], &[false, false, true]);
        assert!(r.output);
        assert_eq!(r.bits_exchanged, 4);
        let r2 = p.run(&[true, false], &[false, true]);
        assert!(!r2.output);
    }
}
