//! The golden 100-query session: one planted-`C_4` graph, 25 seeds ×
//! {even-cycle, triangle} × {faults off, faults on}, answered over a
//! single cached graph. The full response stream must match the
//! checked-in golden **byte for byte** — `scripts/check.sh` runs this
//! test at `RAYON_NUM_THREADS=1` and `4`, so matching the same golden at
//! both settings is the service's determinism contract made executable.
//!
//! Regenerate with `UPDATE_GOLDEN=1 cargo test -p serve --test golden_session`.

use std::path::PathBuf;

use serve::{json, Service, ServiceConfig};

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/session_100.jsonl")
}

/// The canonical 100-query session body (plus the trailing flush).
fn session_input() -> String {
    let graph = r#"{"generator":"planted_c2k","n":96,"d":3,"k":2,"seed":7}"#;
    let mut lines = Vec::new();
    for seed in 0..25u64 {
        for (kind, scenario) in [
            (
                "ec",
                format!(r#"{{"kind":"even_cycle","k":2,"repetitions":2,"seed":{seed}}}"#),
            ),
            ("tri", format!(r#"{{"kind":"triangle","seed":{seed}}}"#)),
        ] {
            for (fault, faulted) in [
                ("clean", "null"),
                ("loss", r#"{"kind":"independent_loss","p":0.25}"#),
            ] {
                // Splice the fault spec into the scenario object.
                let scenario =
                    format!(r#"{},"faults":{faulted}}}"#, scenario.trim_end_matches('}'));
                lines.push(format!(
                    r#"{{"schema":"congest.serve","version":1,"op":"query","id":"{kind}-{fault}-{seed}","graph":{graph},"scenario":{scenario}}}"#
                ));
            }
        }
    }
    assert_eq!(lines.len(), 100);
    lines.push(r#"{"schema":"congest.serve","version":1,"op":"flush"}"#.into());
    lines.join("\n") + "\n"
}

fn run_session() -> String {
    let mut svc = Service::new(ServiceConfig::default());
    let mut out = Vec::new();
    svc.serve(session_input().as_bytes(), &mut out)
        .expect("session runs");
    String::from_utf8(out).expect("responses are UTF-8")
}

#[test]
fn hundred_query_session_matches_golden_bytes() {
    let output = run_session();
    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &output).expect("failed to write golden");
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "missing golden {}; regenerate with UPDATE_GOLDEN=1 cargo test -p serve --test golden_session",
            path.display()
        )
    });
    assert_eq!(
        output, golden,
        "serve session output drifted from its golden (or is thread-count \
         dependent); if the change is intentional, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn session_batch_summary_proves_the_caches_worked() {
    let output = run_session();
    let lines: Vec<&str> = output.lines().collect();
    assert_eq!(lines.len(), 101, "100 responses + 1 batch summary");

    // Every query answered ok, in request order.
    for (i, line) in lines[..100].iter().enumerate() {
        let v = json::parse(line).expect("response parses");
        assert_eq!(v.get("status").and_then(|s| s.as_str()), Some("ok"));
        assert_eq!(
            v.get("schema").and_then(|s| s.as_str()),
            Some("congest.serve.response")
        );
        let expected_cache = if i == 0 { "miss" } else { "hit" };
        assert_eq!(
            v.get("cache")
                .and_then(|c| c.get("graph"))
                .and_then(|g| g.as_str()),
            Some(expected_cache),
            "line {i}: only the first query may generate the graph"
        );
    }

    // The summary's counters assert the cache actually skipped the
    // expensive work: one graph generation and two staged topologies
    // (clique, and clean even-cycle) for the whole batch — the 50 clique
    // queries share one staging, the 25 clean even-cycle queries another;
    // only the 25 faulty even-cycle queries rebuild per query.
    let summary = json::parse(lines[100]).expect("summary parses");
    assert_eq!(
        summary.get("schema").and_then(|s| s.as_str()),
        Some("congest.serve.batch")
    );
    assert_eq!(summary.get("queries").and_then(|q| q.as_u64()), Some(100));
    let metrics = summary.get("metrics").expect("metrics present");
    let counter = |name: &str| metrics.get(name).and_then(|v| v.as_u64());
    assert_eq!(counter("serve.graph.builds"), Some(1));
    assert_eq!(counter("serve.cache.graph_hits"), Some(99));
    assert_eq!(counter("serve.cache.graph_misses"), Some(1));
    assert_eq!(counter("serve.cache.graph_evictions"), Some(0));
    assert_eq!(counter("serve.prepared.builds"), Some(2));
    assert_eq!(counter("serve.cache.prepared_hits"), Some(73));
    assert_eq!(counter("serve.cache.prepared_misses"), Some(2));
    assert_eq!(counter("serve.cache.prepared_evictions"), Some(0));
    assert_eq!(counter("serve.errors"), Some(0));
    assert!(counter("rounds.total").unwrap() > 0);
    assert!(counter("bits.total").unwrap() > 0);
}

#[test]
fn session_is_reproducible_within_a_process() {
    assert_eq!(run_session(), run_session());
}
