//! Batching must be invisible: a batch of N queries answers exactly what
//! N independent single-query sessions (each on a *fresh* service with
//! cold caches) would answer. Cache bookkeeping may differ — that is the
//! point of batching — but verdicts and run reports may not, which is
//! what makes the content-addressed cache a pure optimization.

use proptest::prelude::*;
use serve::json::{self, Value};
use serve::{GraphSpec, Query, ScenarioSpec, Service, ServiceConfig};

/// A small pool of cheap graph specs (shared specs exercise cache hits).
fn arb_graph() -> impl Strategy<Value = GraphSpec> {
    (0u64..4, 8usize..24).prop_map(|(pick, n)| match pick {
        0 => GraphSpec::Cycle { n: n.max(3) },
        1 => GraphSpec::CliqueGraph { n: (n / 3).max(4) },
        2 => GraphSpec::Gnp { n, p: 0.2, seed: 9 },
        _ => GraphSpec::PlantedC2k {
            n: n.max(16),
            d: 3,
            k: 2,
            seed: 5,
        },
    })
}

fn arb_scenario() -> impl Strategy<Value = ScenarioSpec> {
    (0u64..3, any::<u64>()).prop_map(|(pick, seed)| match pick {
        0 => ScenarioSpec::CliqueDetect {
            s: 3,
            seed,
            faults: None,
        },
        1 => ScenarioSpec::CliqueDetect {
            s: 3,
            seed,
            faults: Some(congest::FaultSpec::IndependentLoss(0.3)),
        },
        _ => ScenarioSpec::EvenCycle {
            k: 2,
            repetitions: 1,
            seed,
            edge_bound: None,
            faults: None,
            reliable: false,
        },
    })
}

fn arb_batch() -> impl Strategy<Value = Vec<Query>> {
    proptest::collection::vec((arb_graph(), arb_scenario()), 1..6).prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(idx, (graph, scenario))| Query {
                id: format!("q{idx}"),
                graph,
                scenario,
            })
            .collect()
    })
}

fn request_line(q: &Query) -> String {
    let graph = match &q.graph {
        GraphSpec::Cycle { n } => format!(r#"{{"generator":"cycle","n":{n}}}"#),
        GraphSpec::CliqueGraph { n } => format!(r#"{{"generator":"clique","n":{n}}}"#),
        GraphSpec::Gnp { n, p, seed } => {
            format!(r#"{{"generator":"gnp","n":{n},"p":{p},"seed":{seed}}}"#)
        }
        GraphSpec::PlantedC2k { n, d, k, seed } => {
            format!(r#"{{"generator":"planted_c2k","n":{n},"d":{d},"k":{k},"seed":{seed}}}"#)
        }
        other => unreachable!("not generated here: {other:?}"),
    };
    let scenario = match &q.scenario {
        ScenarioSpec::CliqueDetect { s, seed, faults } => {
            let f = match faults {
                None => "null".to_string(),
                Some(congest::FaultSpec::IndependentLoss(p)) => {
                    format!(r#"{{"kind":"independent_loss","p":{p}}}"#)
                }
                other => unreachable!("not generated here: {other:?}"),
            };
            format!(r#"{{"kind":"clique","s":{s},"seed":{seed},"faults":{f}}}"#)
        }
        ScenarioSpec::EvenCycle {
            k,
            repetitions,
            seed,
            ..
        } => {
            format!(r#"{{"kind":"even_cycle","k":{k},"repetitions":{repetitions},"seed":{seed}}}"#)
        }
    };
    format!(
        r#"{{"schema":"congest.serve","version":1,"op":"query","id":"{}","graph":{graph},"scenario":{scenario}}}"#,
        q.id
    )
}

/// The cache-independent projection of a response: everything except the
/// `cache` member (hit/miss bookkeeping legitimately differs between a
/// warm batch and a cold single-query service).
fn essence(line: &str) -> Vec<(String, Value)> {
    let Value::Obj(entries) = json::parse(line).expect("response parses") else {
        panic!("response is not an object: {line}");
    };
    entries.into_iter().filter(|(k, _)| k != "cache").collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn batch_of_n_answers_like_n_independent_runs(queries in arb_batch()) {
        // One batched session over a shared warm cache...
        let mut batched = Service::new(ServiceConfig::default());
        for q in &queries {
            let immediate = batched.handle_line(&request_line(q));
            prop_assert!(immediate.is_empty(), "query must enqueue cleanly");
        }
        let out = batched.flush();
        prop_assert_eq!(out.len(), queries.len() + 1);

        // ...must answer exactly what cold independent services answer.
        for (i, q) in queries.iter().enumerate() {
            let mut solo = Service::new(ServiceConfig::default());
            prop_assert!(solo.handle_line(&request_line(q)).is_empty());
            let solo_out = solo.flush();
            prop_assert_eq!(solo_out.len(), 2);
            prop_assert_eq!(
                essence(&out[i]),
                essence(&solo_out[0]),
                "query {} diverged between batch and solo run",
                q.id
            );
        }
    }
}

#[test]
fn single_query_strategies_cover_all_generated_shapes() {
    // Smoke for the generators themselves (proptest shim has no shrinking,
    // so a deterministic pass over each arm keeps failures readable).
    for idx in 0..4usize {
        let q = Query {
            id: format!("s{idx}"),
            graph: match idx {
                0 => GraphSpec::Cycle { n: 8 },
                1 => GraphSpec::CliqueGraph { n: 5 },
                2 => GraphSpec::Gnp {
                    n: 12,
                    p: 0.2,
                    seed: 9,
                },
                _ => GraphSpec::PlantedC2k {
                    n: 20,
                    d: 3,
                    k: 2,
                    seed: 5,
                },
            },
            scenario: ScenarioSpec::CliqueDetect {
                s: 3,
                seed: idx as u64,
                faults: None,
            },
        };
        let mut svc = Service::new(ServiceConfig::default());
        assert!(svc.handle_line(&request_line(&q)).is_empty());
        let out = svc.flush();
        assert_eq!(out.len(), 2);
        assert!(out[0].contains(r#""status":"ok""#), "{}", out[0]);
    }
}
