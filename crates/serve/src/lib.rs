//! `congest-serve`: batched simulation-as-a-service over the CONGEST
//! simulator.
//!
//! A long-lived process reads schema-versioned JSONL requests (stdin or a
//! Unix socket), accumulates detection queries, and on `flush` (or end of
//! input) executes the batch over the vendored rayon pool — answering each
//! query with a compact v3 run report, then the batch with a
//! [`congest::MetricsSnapshot`] of cache traffic and aggregate cost.
//!
//! Expensive reusables are **content-addressed**: generated graphs are
//! keyed by `generator:params:seed` ([`GraphSpec::cache_key`]), staged
//! clique topologies ([`congest::Prepared`]: shard plan, CSR handles,
//! bandwidth/round budget) by the graph key they derive from. A cache hit
//! shares the `Arc<Graph>` — including its lazily-packed adjacency bitset
//! — so a 100-query batch over one graph generates it once.
//!
//! Output is deterministic: byte-identical at any `RAYON_NUM_THREADS`
//! (see `service` module docs for the contract, and DESIGN.md §8 for the
//! protocol).
//!
//! ```text
//! $ congest-serve < requests.jsonl > responses.jsonl
//! $ congest-serve --socket /tmp/congest.sock --cache-cap 64
//! ```

pub mod cache;
pub mod json;
pub mod protocol;
pub mod scenario;
pub mod service;

pub use cache::{address_hex, content_address, Cache};
pub use protocol::{
    parse_request, GraphSpec, Query, Request, ScenarioSpec, BATCH_SCHEMA, PROTOCOL_VERSION,
    REQUEST_SCHEMA, RESPONSE_SCHEMA, TELEMETRY_SCHEMA,
};
pub use scenario::{execute, prepare_clique, Job, QueryOutcome};
pub use service::{compact_json, Service, ServiceConfig};
