//! Content-addressed LRU cache for expensive reusables.
//!
//! Keys are *canonical spec strings* (see `protocol::GraphSpec::cache_key`)
//! — two requests describing the same object byte-for-byte map to the same
//! entry, and the derived FNV-1a address is stable across processes, so
//! responses can name the cached object without leaking pointers. Values sit
//! behind `Arc`, so a hit hands out a shared handle: for a cached
//! [`graphlib::Graph`] that handle also carries the lazily-packed adjacency
//! bitset (`OnceLock` inside the graph), meaning one query's
//! `packed_adjacency()` build is every later query's free lookup.
//!
//! Eviction is LRU by a monotone access tick — fully deterministic, no
//! clocks — and the hit/miss/eviction tallies feed the per-batch metrics
//! the service reports.

use std::collections::HashMap;
use std::sync::Arc;

/// FNV-1a 64-bit hash of `key`, the cache's content address.
pub fn content_address(key: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in key.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// `content_address` rendered the way responses print it.
pub fn address_hex(key: &str) -> String {
    format!("{:016x}", content_address(key))
}

struct Entry<V> {
    value: Arc<V>,
    last_used: u64,
}

/// A deterministic LRU cache from canonical key strings to shared values.
pub struct Cache<V> {
    entries: HashMap<String, Entry<V>>,
    capacity: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl<V> Cache<V> {
    /// A cache holding at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> Self {
        Cache {
            entries: HashMap::new(),
            capacity: capacity.max(1),
            tick: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Returns the cached value for `key`, building and inserting it with
    /// `build` on a miss. The boolean is `true` on a hit.
    pub fn get_or_insert_with(&mut self, key: &str, build: impl FnOnce() -> V) -> (Arc<V>, bool) {
        self.tick += 1;
        if let Some(e) = self.entries.get_mut(key) {
            e.last_used = self.tick;
            self.hits += 1;
            return (Arc::clone(&e.value), true);
        }
        self.misses += 1;
        let value = Arc::new(build());
        if self.entries.len() >= self.capacity {
            self.evict_lru();
        }
        self.entries.insert(
            key.to_string(),
            Entry {
                value: Arc::clone(&value),
                last_used: self.tick,
            },
        );
        (value, false)
    }

    fn evict_lru(&mut self) {
        // Ties on `last_used` cannot happen (ticks are unique), so the
        // victim is unambiguous and eviction is deterministic.
        if let Some(victim) = self
            .entries
            .iter()
            .min_by_key(|(_, e)| e.last_used)
            .map(|(k, _)| k.clone())
        {
            self.entries.remove(&victim);
            self.evictions += 1;
        }
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Cumulative hits since construction.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cumulative misses (each miss is one build).
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Cumulative LRU evictions.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_returns_the_same_allocation() {
        let mut c: Cache<Vec<u32>> = Cache::new(4);
        let (a, hit_a) = c.get_or_insert_with("k", || vec![1, 2, 3]);
        let (b, hit_b) = c.get_or_insert_with("k", || panic!("must not rebuild"));
        assert!(!hit_a);
        assert!(hit_b);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn lru_evicts_the_least_recently_used() {
        let mut c: Cache<u32> = Cache::new(2);
        c.get_or_insert_with("a", || 1);
        c.get_or_insert_with("b", || 2);
        c.get_or_insert_with("a", || panic!("hit")); // refresh a
        c.get_or_insert_with("c", || 3); // evicts b (LRU), not a
        assert_eq!(c.evictions(), 1);
        let (_, hit) = c.get_or_insert_with("a", || panic!("hit"));
        assert!(hit, "a survived");
        let (_, hit) = c.get_or_insert_with("b", || 2);
        assert!(!hit, "b was evicted");
    }

    #[test]
    fn addresses_are_stable() {
        // FNV-1a reference values: pinning these catches accidental
        // changes to the address scheme, which responses expose.
        assert_eq!(content_address(""), 0xcbf29ce484222325);
        assert_eq!(address_hex("a"), "af63dc4c8601ec8c");
        assert_eq!(address_hex("gnp:n=48:p=0.05:seed=5").len(), 16);
    }
}
