//! The `congest.serve` wire protocol: schema-versioned JSONL requests and
//! the typed specs they parse into.
//!
//! One request per line. Every line is an object with `"schema"` and
//! `"version"` fields; unknown schemas and future versions are rejected
//! up front so a client never gets a silently-misinterpreted answer.
//!
//! ```text
//! {"schema":"congest.serve","version":1,"op":"query","id":"q0",
//!  "graph":{"generator":"planted_c2k","n":96,"d":3,"k":2,"seed":7},
//!  "scenario":{"kind":"even_cycle","k":2,"repetitions":2,"seed":11}}
//! {"schema":"congest.serve","version":1,"op":"flush"}
//! ```
//!
//! `op:"query"` enqueues a detection query; `op:"flush"` executes the
//! pending batch and streams one response line per query (in request
//! order) followed by a `congest.serve.batch` summary. End of input
//! implies a final flush. `op:"telemetry"` answers with one
//! `congest.serve.telemetry` snapshot line (cumulative counters plus
//! query-latency percentiles); `op:"stats"` answers with the same
//! registry in Prometheus text-exposition format.
//!
//! Graph and scenario specs carry *canonical cache keys*
//! ([`GraphSpec::cache_key`]): the serve cache is content-addressed by
//! these strings, so equal specs share one generated graph — and with it
//! the CSR and the lazily-packed adjacency bitsets — across the batch and
//! across batches.

use congest::FaultSpec;
use graphlib::{generators, Graph};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use crate::json::Value;

/// Request schema identifier.
pub const REQUEST_SCHEMA: &str = "congest.serve";
/// Per-query response schema identifier.
pub const RESPONSE_SCHEMA: &str = "congest.serve.response";
/// Batch summary schema identifier.
pub const BATCH_SCHEMA: &str = "congest.serve.batch";
/// Telemetry snapshot schema identifier.
pub const TELEMETRY_SCHEMA: &str = "congest.serve.telemetry";
/// Protocol version this build speaks.
pub const PROTOCOL_VERSION: u64 = 1;

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Enqueue one detection query.
    Query(Query),
    /// Execute the pending batch now.
    Flush,
    /// Emit one `congest.serve.telemetry` snapshot line (cumulative
    /// service counters, query-latency percentiles).
    Telemetry,
    /// Emit the cumulative metrics in Prometheus text-exposition format.
    Stats,
}

/// One detection query: a graph to (re)use and a scenario to run on it.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Client-chosen correlation id, echoed in the response.
    pub id: String,
    /// The input graph.
    pub graph: GraphSpec,
    /// What to detect, and under which conditions.
    pub scenario: ScenarioSpec,
}

/// A generated input graph, identified by generator + parameters + seed.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphSpec {
    /// `C_n`.
    Cycle { n: usize },
    /// `P_n`.
    Path { n: usize },
    /// `K_n`.
    CliqueGraph { n: usize },
    /// `K_{a,b}`.
    CompleteBipartite { a: usize, b: usize },
    /// Erdős–Rényi `G(n, p)`.
    Gnp { n: usize, p: f64, seed: u64 },
    /// `G(n, p)` with a planted cycle of the given length.
    PlantedCycleGnp {
        n: usize,
        p: f64,
        seed: u64,
        len: usize,
    },
    /// `d`-regular-ish host with a planted `C_{2k}`.
    PlantedC2k {
        n: usize,
        d: usize,
        k: usize,
        seed: u64,
    },
    /// Random graph with maximum degree `d`.
    BoundedDegree { n: usize, d: usize, seed: u64 },
}

impl GraphSpec {
    /// The canonical cache key: a stable, human-readable rendering of
    /// generator + parameters + seed. Equal keys ⇒ byte-identical graphs.
    pub fn cache_key(&self) -> String {
        match self {
            GraphSpec::Cycle { n } => format!("cycle:n={n}"),
            GraphSpec::Path { n } => format!("path:n={n}"),
            GraphSpec::CliqueGraph { n } => format!("clique:n={n}"),
            GraphSpec::CompleteBipartite { a, b } => format!("complete_bipartite:a={a}:b={b}"),
            GraphSpec::Gnp { n, p, seed } => format!("gnp:n={n}:p={p}:seed={seed}"),
            GraphSpec::PlantedCycleGnp { n, p, seed, len } => {
                format!("planted_cycle_gnp:n={n}:p={p}:seed={seed}:len={len}")
            }
            GraphSpec::PlantedC2k { n, d, k, seed } => {
                format!("planted_c2k:n={n}:d={d}:k={k}:seed={seed}")
            }
            GraphSpec::BoundedDegree { n, d, seed } => {
                format!("bounded_degree:n={n}:d={d}:seed={seed}")
            }
        }
    }

    /// Generates the graph this spec describes (the expensive step the
    /// cache exists to amortize).
    pub fn build(&self) -> Graph {
        match self {
            GraphSpec::Cycle { n } => generators::cycle(*n),
            GraphSpec::Path { n } => generators::path(*n),
            GraphSpec::CliqueGraph { n } => generators::clique(*n),
            GraphSpec::CompleteBipartite { a, b } => generators::complete_bipartite(*a, *b),
            GraphSpec::Gnp { n, p, seed } => {
                let mut rng = ChaCha8Rng::seed_from_u64(*seed);
                generators::gnp(*n, *p, &mut rng)
            }
            GraphSpec::PlantedCycleGnp { n, p, seed, len } => {
                let mut rng = ChaCha8Rng::seed_from_u64(*seed);
                let host = generators::gnp(*n, *p, &mut rng);
                generators::plant_cycle(&host, *len, &mut rng).0
            }
            GraphSpec::PlantedC2k { n, d, k, seed } => {
                let mut rng = ChaCha8Rng::seed_from_u64(*seed);
                generators::planted_c2k(*n, *d, *k, &mut rng).0
            }
            GraphSpec::BoundedDegree { n, d, seed } => {
                let mut rng = ChaCha8Rng::seed_from_u64(*seed);
                generators::bounded_degree(*n, *d, &mut rng)
            }
        }
    }
}

/// What to run against the graph.
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioSpec {
    /// The Theorem 1.1 `C_{2k}` detector ([`subgraph_detection::detect_even_cycle`]),
    /// optionally fault-injected and optionally behind the reliable
    /// transport.
    EvenCycle {
        k: usize,
        repetitions: usize,
        seed: u64,
        edge_bound: Option<usize>,
        faults: Option<FaultSpec>,
        reliable: bool,
    },
    /// Neighbor-exchange `K_s` detection (s = 3 for `kind:"triangle"`),
    /// run against a cached staged topology.
    CliqueDetect {
        s: usize,
        seed: u64,
        faults: Option<FaultSpec>,
    },
}

impl ScenarioSpec {
    /// A canonical label for this scenario, used as the run-report label
    /// so a response is self-describing.
    pub fn label(&self) -> String {
        match self {
            ScenarioSpec::EvenCycle {
                k,
                reliable,
                faults,
                ..
            } => {
                let mode = match (faults.is_some(), reliable) {
                    (false, _) => "clean",
                    (true, false) => "faulty",
                    (true, true) => "faulty+arq",
                };
                format!("serve.even_cycle.k{k}.{mode}")
            }
            ScenarioSpec::CliqueDetect { s, faults, .. } => {
                let mode = if faults.is_some() { "faulty" } else { "clean" };
                format!("serve.clique.s{s}.{mode}")
            }
        }
    }
}

fn field<'v>(v: &'v Value, key: &str, ctx: &str) -> Result<&'v Value, String> {
    v.get(key)
        .ok_or_else(|| format!("{ctx}: missing \"{key}\""))
}

fn usize_field(v: &Value, key: &str, ctx: &str) -> Result<usize, String> {
    field(v, key, ctx)?
        .as_usize()
        .ok_or_else(|| format!("{ctx}: \"{key}\" must be a non-negative integer"))
}

fn u64_field(v: &Value, key: &str, ctx: &str) -> Result<u64, String> {
    field(v, key, ctx)?
        .as_u64()
        .ok_or_else(|| format!("{ctx}: \"{key}\" must be a non-negative integer"))
}

fn f64_field(v: &Value, key: &str, ctx: &str) -> Result<f64, String> {
    field(v, key, ctx)?
        .as_f64()
        .ok_or_else(|| format!("{ctx}: \"{key}\" must be a number"))
}

fn str_field<'v>(v: &'v Value, key: &str, ctx: &str) -> Result<&'v str, String> {
    field(v, key, ctx)?
        .as_str()
        .ok_or_else(|| format!("{ctx}: \"{key}\" must be a string"))
}

/// Parses one request line (already JSON-parsed into `v`).
pub fn parse_request(v: &Value) -> Result<Request, String> {
    let schema = str_field(v, "schema", "request")?;
    if schema != REQUEST_SCHEMA {
        return Err(format!(
            "request: unknown schema {schema:?} (expected {REQUEST_SCHEMA:?})"
        ));
    }
    let version = u64_field(v, "version", "request")?;
    if version != PROTOCOL_VERSION {
        return Err(format!(
            "request: unsupported version {version} (this build speaks {PROTOCOL_VERSION})"
        ));
    }
    match str_field(v, "op", "request")? {
        "flush" => Ok(Request::Flush),
        "telemetry" => Ok(Request::Telemetry),
        "stats" => Ok(Request::Stats),
        "query" => {
            let id = str_field(v, "id", "query")?.to_string();
            let graph = parse_graph(field(v, "graph", "query")?)?;
            let scenario = parse_scenario(field(v, "scenario", "query")?)?;
            Ok(Request::Query(Query {
                id,
                graph,
                scenario,
            }))
        }
        other => Err(format!("request: unknown op {other:?}")),
    }
}

/// Parses a graph spec object.
pub fn parse_graph(v: &Value) -> Result<GraphSpec, String> {
    let ctx = "graph";
    match str_field(v, "generator", ctx)? {
        "cycle" => Ok(GraphSpec::Cycle {
            n: usize_field(v, "n", ctx)?,
        }),
        "path" => Ok(GraphSpec::Path {
            n: usize_field(v, "n", ctx)?,
        }),
        "clique" => Ok(GraphSpec::CliqueGraph {
            n: usize_field(v, "n", ctx)?,
        }),
        "complete_bipartite" => Ok(GraphSpec::CompleteBipartite {
            a: usize_field(v, "a", ctx)?,
            b: usize_field(v, "b", ctx)?,
        }),
        "gnp" => Ok(GraphSpec::Gnp {
            n: usize_field(v, "n", ctx)?,
            p: f64_field(v, "p", ctx)?,
            seed: u64_field(v, "seed", ctx)?,
        }),
        "planted_cycle_gnp" => Ok(GraphSpec::PlantedCycleGnp {
            n: usize_field(v, "n", ctx)?,
            p: f64_field(v, "p", ctx)?,
            seed: u64_field(v, "seed", ctx)?,
            len: usize_field(v, "len", ctx)?,
        }),
        "planted_c2k" => Ok(GraphSpec::PlantedC2k {
            n: usize_field(v, "n", ctx)?,
            d: usize_field(v, "d", ctx)?,
            k: usize_field(v, "k", ctx)?,
            seed: u64_field(v, "seed", ctx)?,
        }),
        "bounded_degree" => Ok(GraphSpec::BoundedDegree {
            n: usize_field(v, "n", ctx)?,
            d: usize_field(v, "d", ctx)?,
            seed: u64_field(v, "seed", ctx)?,
        }),
        other => Err(format!("graph: unknown generator {other:?}")),
    }
}

/// Parses an optional fault spec (`null`/absent ⇒ fault-free).
pub fn parse_faults(v: Option<&Value>) -> Result<Option<FaultSpec>, String> {
    let Some(v) = v else { return Ok(None) };
    if *v == Value::Null {
        return Ok(None);
    }
    let ctx = "faults";
    match str_field(v, "kind", ctx)? {
        "none" => Ok(None),
        "independent_loss" => Ok(Some(FaultSpec::IndependentLoss(f64_field(v, "p", ctx)?))),
        "bit_flip" => Ok(Some(FaultSpec::BitFlip(f64_field(v, "p", ctx)?))),
        "gilbert_elliott" => Ok(Some(FaultSpec::GilbertElliott(
            f64_field(v, "p_good_to_bad", ctx)?,
            f64_field(v, "p_bad_to_good", ctx)?,
            f64_field(v, "loss_good", ctx)?,
            f64_field(v, "loss_bad", ctx)?,
        ))),
        other => Err(format!("faults: unknown kind {other:?}")),
    }
}

/// Parses a scenario spec object.
pub fn parse_scenario(v: &Value) -> Result<ScenarioSpec, String> {
    let ctx = "scenario";
    match str_field(v, "kind", ctx)? {
        "even_cycle" => {
            let k = usize_field(v, "k", ctx)?;
            if k < 2 {
                return Err("scenario: even_cycle needs k >= 2".into());
            }
            let repetitions = match v.get("repetitions") {
                None | Some(Value::Null) => 1,
                Some(r) => r
                    .as_usize()
                    .filter(|r| *r >= 1)
                    .ok_or("scenario: \"repetitions\" must be a positive integer")?,
            };
            let edge_bound = match v.get("edge_bound") {
                None | Some(Value::Null) => None,
                Some(m) => Some(
                    m.as_usize()
                        .ok_or("scenario: \"edge_bound\" must be a non-negative integer")?,
                ),
            };
            let reliable = match v.get("reliable") {
                None | Some(Value::Null) => false,
                Some(b) => b
                    .as_bool()
                    .ok_or("scenario: \"reliable\" must be a boolean")?,
            };
            Ok(ScenarioSpec::EvenCycle {
                k,
                repetitions,
                seed: u64_field(v, "seed", ctx)?,
                edge_bound,
                faults: parse_faults(v.get("faults"))?,
                reliable,
            })
        }
        kind @ ("triangle" | "clique") => {
            let s = if kind == "triangle" {
                3
            } else {
                let s = usize_field(v, "s", ctx)?;
                if s < 3 {
                    return Err("scenario: clique needs s >= 3".into());
                }
                s
            };
            Ok(ScenarioSpec::CliqueDetect {
                s,
                seed: u64_field(v, "seed", ctx)?,
                faults: parse_faults(v.get("faults"))?,
            })
        }
        other => Err(format!("scenario: unknown kind {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn req(line: &str) -> Result<Request, String> {
        parse_request(&json::parse(line)?)
    }

    #[test]
    fn parses_a_full_query() {
        let r = req(
            r#"{"schema":"congest.serve","version":1,"op":"query","id":"q0",
                "graph":{"generator":"planted_c2k","n":96,"d":3,"k":2,"seed":7},
                "scenario":{"kind":"even_cycle","k":2,"repetitions":2,"seed":11,
                            "faults":{"kind":"independent_loss","p":0.25},"reliable":true}}"#,
        )
        .unwrap();
        let Request::Query(q) = r else {
            panic!("expected query")
        };
        assert_eq!(q.id, "q0");
        assert_eq!(q.graph.cache_key(), "planted_c2k:n=96:d=3:k=2:seed=7");
        match q.scenario {
            ScenarioSpec::EvenCycle {
                k,
                repetitions,
                seed,
                reliable,
                ref faults,
                ..
            } => {
                assert_eq!((k, repetitions, seed, reliable), (2, 2, 11, true));
                assert!(matches!(faults, Some(FaultSpec::IndependentLoss(p)) if *p == 0.25));
            }
            _ => panic!("expected even_cycle"),
        }
    }

    #[test]
    fn triangle_is_clique_s3() {
        let r = req(
            r#"{"schema":"congest.serve","version":1,"op":"query","id":"t",
                "graph":{"generator":"cycle","n":8},
                "scenario":{"kind":"triangle","seed":1}}"#,
        )
        .unwrap();
        let Request::Query(q) = r else { panic!() };
        assert_eq!(
            q.scenario,
            ScenarioSpec::CliqueDetect {
                s: 3,
                seed: 1,
                faults: None
            }
        );
        assert_eq!(q.scenario.label(), "serve.clique.s3.clean");
    }

    #[test]
    fn flush_parses_and_versions_are_enforced() {
        assert_eq!(
            req(r#"{"schema":"congest.serve","version":1,"op":"flush"}"#).unwrap(),
            Request::Flush
        );
        assert!(
            req(r#"{"schema":"congest.serve","version":2,"op":"flush"}"#)
                .unwrap_err()
                .contains("version")
        );
        assert!(req(r#"{"schema":"nope","version":1,"op":"flush"}"#)
            .unwrap_err()
            .contains("schema"));
        assert!(
            req(r#"{"schema":"congest.serve","version":1,"op":"evict"}"#)
                .unwrap_err()
                .contains("unknown op")
        );
    }

    #[test]
    fn cache_keys_are_canonical_and_builds_deterministic() {
        let spec = GraphSpec::Gnp {
            n: 32,
            p: 0.1,
            seed: 9,
        };
        assert_eq!(spec.cache_key(), "gnp:n=32:p=0.1:seed=9");
        let a = spec.build();
        let b = spec.build();
        assert_eq!(a.n(), b.n());
        assert_eq!(a.m(), b.m());
    }

    #[test]
    fn planted_cycle_gnp_contains_the_planted_cycle() {
        let spec = GraphSpec::PlantedCycleGnp {
            n: 24,
            p: 0.02,
            seed: 3,
            len: 4,
        };
        let g = spec.build();
        assert_eq!(g.n(), 24);
        assert!(g.m() >= 4, "planted cycle edges present");
    }
}
