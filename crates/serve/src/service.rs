//! The batch service: accumulate queries, execute them as one batch over
//! the rayon pool, stream JSONL responses.
//!
//! # Determinism contract
//!
//! A batch's output bytes depend only on (request bytes, cache state at
//! batch start). Three mechanisms make that hold at any
//! `RAYON_NUM_THREADS`:
//!
//! 1. **Sequential resolve.** Cache lookups (graph generation, staged
//!    clique topologies) happen one query at a time, in request order,
//!    before anything executes — so hit/miss/build counters and LRU order
//!    never depend on execution interleaving.
//! 2. **Ordered parallel execute.** Resolved jobs run via the pool's
//!    ordered `map`/`collect`, so responses come back in request order
//!    no matter which worker finished first.
//! 3. **Explicit seeds.** Every query carries its own RNG seed; the
//!    simulator is deterministic given one.
//!
//! Malformed lines are answered immediately (they never make it into a
//! batch) and tallied in the next batch summary's `serve.errors`.

use std::io::{BufRead, Write};
use std::sync::Arc;
use std::time::Instant;

use congest::{Histogram, Metrics, MetricValue, Prepared};
use graphlib::Graph;
use rayon::prelude::*;

use crate::cache::{address_hex, Cache};
use crate::json::{self, escape};
use crate::protocol::{
    parse_request, Query, Request, BATCH_SCHEMA, PROTOCOL_VERSION, RESPONSE_SCHEMA,
    TELEMETRY_SCHEMA,
};
use crate::scenario::{execute, prepare_clique, prepare_even_cycle, Job};
use crate::ScenarioSpec;

/// Cache capacities and telemetry knobs for a service instance.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Max generated graphs kept (LRU).
    pub graph_cache_cap: usize,
    /// Max staged clique topologies kept (LRU).
    pub prepared_cache_cap: usize,
    /// Emit one `congest.serve.telemetry` line after every N-th flush
    /// (`None` ⇒ only on an explicit `op:"telemetry"` request).
    pub telemetry_every: Option<u64>,
    /// Rewrite the cumulative metrics to this file, in Prometheus
    /// text-exposition format, after every flush.
    pub metrics_path: Option<String>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            graph_cache_cap: 32,
            prepared_cache_cap: 32,
            telemetry_every: None,
            metrics_path: None,
        }
    }
}

/// A long-lived query service with content-addressed caches.
pub struct Service {
    graphs: Cache<Graph>,
    prepared: Cache<Prepared>,
    pending: Vec<Query>,
    pending_errors: u64,
    /// Cumulative service counters, folded from every batch summary. Kept
    /// separate from the wall-clock latency histogram so the counter
    /// registry — and with it every `"metrics"` object on the wire — stays
    /// a deterministic function of the request stream.
    telemetry: Metrics,
    /// Wall-clock per-query execution spans, microseconds.
    latency_us: Histogram,
    /// Flushes that emitted output (the telemetry cadence counter).
    batches: u64,
    telemetry_every: Option<u64>,
    metrics_path: Option<String>,
}

/// One query resolved against the caches, plus the bookkeeping the
/// response line reports.
struct ResolvedQuery {
    id: String,
    job: Job,
    graph_addr: String,
    graph_hit: bool,
    prepared_hit: Option<bool>,
}

impl Service {
    /// A service with the given cache capacities.
    pub fn new(cfg: ServiceConfig) -> Self {
        Service {
            graphs: Cache::new(cfg.graph_cache_cap),
            prepared: Cache::new(cfg.prepared_cache_cap),
            pending: Vec::new(),
            pending_errors: 0,
            telemetry: Metrics::new(),
            latency_us: Histogram::new(),
            batches: 0,
            telemetry_every: cfg.telemetry_every,
            metrics_path: cfg.metrics_path,
        }
    }

    /// Queries accumulated and not yet flushed.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// The graph cache (counters are cumulative across batches).
    pub fn graph_cache(&self) -> &Cache<Graph> {
        &self.graphs
    }

    /// The staged-topology cache.
    pub fn prepared_cache(&self) -> &Cache<Prepared> {
        &self.prepared
    }

    /// Handles one input line. Returns the response lines to emit *now*:
    /// empty for an enqueued query, one error line for a malformed line,
    /// and responses-plus-summary for a flush.
    pub fn handle_line(&mut self, line: &str) -> Vec<String> {
        let line = line.trim();
        if line.is_empty() {
            return Vec::new();
        }
        let parsed = json::parse(line).and_then(|v| parse_request(&v));
        match parsed {
            Err(e) => {
                self.pending_errors += 1;
                vec![error_line(None, &e)]
            }
            Ok(Request::Query(q)) => {
                self.pending.push(q);
                Vec::new()
            }
            Ok(Request::Flush) => self.flush(),
            Ok(Request::Telemetry) => vec![self.telemetry_line()],
            Ok(Request::Stats) => self
                .stats_text()
                .lines()
                .map(str::to_string)
                .collect(),
        }
    }

    /// Executes the pending batch: one response line per query in request
    /// order, then one `congest.serve.batch` summary line. Emits nothing
    /// when there is nothing to report (no queries, no errors).
    pub fn flush(&mut self) -> Vec<String> {
        if self.pending.is_empty() && self.pending_errors == 0 {
            return Vec::new();
        }
        let queries = std::mem::take(&mut self.pending);
        let errors = std::mem::take(&mut self.pending_errors);

        let cache_before = (
            self.graphs.hits(),
            self.graphs.misses(),
            self.graphs.evictions(),
            self.prepared.hits(),
            self.prepared.misses(),
            self.prepared.evictions(),
        );

        // Phase 1 — sequential resolve (deterministic cache traffic).
        let resolved: Vec<ResolvedQuery> = queries.into_iter().map(|q| self.resolve(q)).collect();

        // Phase 2 — ordered parallel execute. The shim's collect preserves
        // input order, so line order is request order. Each query carries
        // its wall-clock span back for the latency histogram; the span
        // never reaches the response line, so output bytes stay a pure
        // function of the request stream.
        let timed: Vec<(String, u64)> = resolved
            .into_par_iter()
            .map(|r| {
                let t = Instant::now();
                let line = match execute(&r.job) {
                    Ok(out) => {
                        let cache = cache_json(&r);
                        let report = compact_json(&out.report.to_json());
                        format!(
                            r#"{{"schema":"{RESPONSE_SCHEMA}","version":{PROTOCOL_VERSION},"id":"{}","status":"ok","detected":{},"cache":{cache},"report":{report}}}"#,
                            escape(&r.id),
                            out.detected,
                        )
                    }
                    Err(e) => error_line(Some(&r.id), &format!("{e:?}")),
                };
                (line, t.elapsed().as_micros() as u64)
            })
            .collect();
        let mut executed = Vec::with_capacity(timed.len());
        for (line, micros) in timed {
            self.latency_us.observe(micros);
            executed.push(line);
        }

        // Batch summary: per-batch deltas for cache traffic, plus totals
        // aggregated from the per-query reports (sequentially, in order).
        let mut m = Metrics::new();
        m.inc("serve.queries", executed.len() as u64);
        m.inc("serve.errors", errors);
        m.inc(
            "serve.cache.graph_hits",
            self.graphs.hits() - cache_before.0,
        );
        m.inc("serve.graph.builds", self.graphs.misses() - cache_before.1);
        m.inc(
            "serve.cache.graph_evictions",
            self.graphs.evictions() - cache_before.2,
        );
        m.inc(
            "serve.cache.graph_misses",
            self.graphs.misses() - cache_before.1,
        );
        m.inc(
            "serve.cache.prepared_hits",
            self.prepared.hits() - cache_before.3,
        );
        m.inc(
            "serve.prepared.builds",
            self.prepared.misses() - cache_before.4,
        );
        m.inc(
            "serve.cache.prepared_misses",
            self.prepared.misses() - cache_before.4,
        );
        m.inc(
            "serve.cache.prepared_evictions",
            self.prepared.evictions() - cache_before.5,
        );
        for line in &executed {
            // The response embeds the totals; re-parse is cheaper than
            // threading a side channel and keeps this path self-checking.
            if let Ok(v) = json::parse(line) {
                if let Some(report) = v.get("report") {
                    for (key, metric) in [
                        ("rounds", "rounds.total"),
                        ("total_bits", "bits.total"),
                        ("total_messages", "messages.total"),
                    ] {
                        if let Some(n) = report.get(key).and_then(|x| x.as_u64()) {
                            m.inc(metric, n);
                        }
                    }
                }
            }
        }

        let mut out = executed;
        out.push(format!(
            r#"{{"schema":"{BATCH_SCHEMA}","version":{PROTOCOL_VERSION},"queries":{},"errors":{},"metrics":{}}}"#,
            out.len(),
            errors,
            m.snapshot().to_json(),
        ));

        // Fold the batch counters into the cumulative registry the
        // telemetry/stats verbs report from.
        self.batches += 1;
        for (name, value) in m.snapshot().entries() {
            if let MetricValue::Counter(v) = value {
                self.telemetry.inc(name, *v);
            }
        }
        self.telemetry.inc("serve.batches", 1);
        if self
            .telemetry_every
            .is_some_and(|every| every > 0 && self.batches % every == 0)
        {
            out.push(self.telemetry_line());
        }
        if let Some(path) = self.metrics_path.clone() {
            if let Err(e) = std::fs::write(&path, self.stats_text()) {
                eprintln!("congest-serve: cannot write metrics to {path}: {e}");
            }
        }
        out
    }

    /// One `congest.serve.telemetry` line: cumulative counters (a
    /// deterministic function of the request stream) plus wall-clock
    /// query-latency percentiles. Consumers diffing telemetry across runs
    /// should strip the `*_ms` fields — they are the only
    /// non-deterministic bytes on the wire.
    pub fn telemetry_line(&self) -> String {
        format!(
            r#"{{"schema":"{TELEMETRY_SCHEMA}","version":{PROTOCOL_VERSION},"batches":{},"metrics":{},"p99_ms":{:.3},"mean_ms":{:.3}}}"#,
            self.batches,
            self.telemetry.snapshot().to_json(),
            self.latency_us.quantile_upper_bound(0.99) as f64 / 1000.0,
            self.latency_us.mean() / 1000.0,
        )
    }

    /// The cumulative registry — counters plus the `serve.latency_us`
    /// span histogram — in Prometheus text-exposition format.
    pub fn stats_text(&self) -> String {
        let mut m = self.telemetry.clone();
        if self.latency_us.count() > 0 {
            m.install_hist("serve.latency_us", self.latency_us.clone());
        }
        m.snapshot().to_prometheus()
    }

    fn resolve(&mut self, q: Query) -> ResolvedQuery {
        let key = q.graph.cache_key();
        let (graph, graph_hit) = self.graphs.get_or_insert_with(&key, || q.graph.build());
        let (prepared, prepared_hit) = match &q.scenario {
            ScenarioSpec::CliqueDetect { .. } => {
                // The staged topology depends on the graph alone (see
                // `scenario::prepare_clique`), so it shares the graph's
                // content address.
                let pkey = format!("prepared:clique:{key}");
                let (p, hit) = self
                    .prepared
                    .get_or_insert_with(&pkey, || prepare_clique(&graph));
                (Some(Prepared::clone(&p)), Some(hit))
            }
            ScenarioSpec::EvenCycle {
                k,
                edge_bound,
                faults,
                ..
            } => {
                if faults.is_none() {
                    // The clean-run staging is a pure function of the
                    // graph plus the topology knobs (k, edge bound) —
                    // seed and repetition budget ride in per run — so it
                    // is content-addressed by exactly those. Faulty and
                    // transport-wrapped runs rebuild their configuration
                    // per query and stay uncached.
                    let pkey = match edge_bound {
                        Some(m) => format!("prepared:evencycle:k{k}:m{m}:{key}"),
                        None => format!("prepared:evencycle:k{k}:{key}"),
                    };
                    let (p, hit) = self
                        .prepared
                        .get_or_insert_with(&pkey, || prepare_even_cycle(&graph, *k, *edge_bound));
                    (Some(Prepared::clone(&p)), Some(hit))
                } else {
                    (None, None)
                }
            }
        };
        ResolvedQuery {
            id: q.id,
            job: Job {
                graph: Arc::clone(&graph),
                prepared,
                scenario: q.scenario,
            },
            graph_addr: address_hex(&key),
            graph_hit,
            prepared_hit,
        }
    }

    /// Drives a whole session: read JSONL requests from `input`, write
    /// JSONL responses to `output`. End of input implies a final flush.
    pub fn serve<R: BufRead, W: Write>(&mut self, input: R, mut output: W) -> std::io::Result<()> {
        for line in input.lines() {
            let line = line?;
            for resp in self.handle_line(&line) {
                writeln!(output, "{resp}")?;
            }
            output.flush()?;
        }
        for resp in self.flush() {
            writeln!(output, "{resp}")?;
        }
        output.flush()
    }
}

fn cache_json(r: &ResolvedQuery) -> String {
    let graph = if r.graph_hit { "hit" } else { "miss" };
    match r.prepared_hit {
        None => format!(r#"{{"graph":"{graph}","addr":"{}"}}"#, r.graph_addr),
        Some(hit) => format!(
            r#"{{"graph":"{graph}","prepared":"{}","addr":"{}"}}"#,
            if hit { "hit" } else { "miss" },
            r.graph_addr
        ),
    }
}

fn error_line(id: Option<&str>, msg: &str) -> String {
    let id = match id {
        Some(id) => format!(r#""{}""#, escape(id)),
        None => "null".to_string(),
    };
    format!(
        r#"{{"schema":"{RESPONSE_SCHEMA}","version":{PROTOCOL_VERSION},"id":{id},"status":"error","error":"{}"}}"#,
        escape(msg)
    )
}

/// Collapses a pretty-printed JSON document to one line. Safe because the
/// report writer escapes control characters, so no string literal ever
/// contains a raw newline — every line break is structural whitespace.
pub fn compact_json(pretty: &str) -> String {
    pretty.lines().map(str::trim).collect::<Vec<_>>().concat()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn query_line(id: &str, seed: u64) -> String {
        format!(
            r#"{{"schema":"congest.serve","version":1,"op":"query","id":"{id}",
                 "graph":{{"generator":"planted_c2k","n":64,"d":3,"k":2,"seed":5}},
                 "scenario":{{"kind":"triangle","seed":{seed}}}}}"#
        )
        .replace('\n', " ")
    }

    #[test]
    fn queries_enqueue_and_flush_answers_in_order() {
        let mut svc = Service::new(ServiceConfig::default());
        assert!(svc.handle_line(&query_line("a", 1)).is_empty());
        assert!(svc.handle_line(&query_line("b", 2)).is_empty());
        assert_eq!(svc.pending_len(), 2);
        let out = svc.handle_line(r#"{"schema":"congest.serve","version":1,"op":"flush"}"#);
        assert_eq!(out.len(), 3, "two responses + one summary");
        assert!(out[0].contains(r#""id":"a""#));
        assert!(out[1].contains(r#""id":"b""#));
        assert!(out[2].contains(r#""schema":"congest.serve.batch""#));
        // Second query reuses both the graph and the staged topology.
        assert!(out[0].contains(r#""graph":"miss","prepared":"miss""#));
        assert!(out[1].contains(r#""graph":"hit","prepared":"hit""#));
        let summary = json::parse(&out[2]).unwrap();
        let metrics = summary.get("metrics").unwrap();
        assert_eq!(metrics.get("serve.graph.builds").unwrap().as_u64(), Some(1));
        assert_eq!(
            metrics.get("serve.cache.graph_hits").unwrap().as_u64(),
            Some(1)
        );
    }

    #[test]
    fn telemetry_verb_reports_cumulative_counters_across_batches() {
        let mut svc = Service::new(ServiceConfig::default());
        svc.handle_line(&query_line("a", 1));
        svc.flush();
        svc.handle_line(&query_line("b", 2));
        svc.flush();
        let out = svc.handle_line(r#"{"schema":"congest.serve","version":1,"op":"telemetry"}"#);
        assert_eq!(out.len(), 1, "telemetry answers with exactly one line");
        let v = json::parse(&out[0]).unwrap();
        assert_eq!(
            v.get("schema").unwrap().as_str(),
            Some("congest.serve.telemetry")
        );
        assert_eq!(v.get("batches").unwrap().as_u64(), Some(2));
        let m = v.get("metrics").unwrap();
        assert_eq!(m.get("serve.queries").unwrap().as_u64(), Some(2));
        assert_eq!(m.get("serve.batches").unwrap().as_u64(), Some(2));
        assert!(
            v.get("p99_ms").is_some() && v.get("mean_ms").is_some(),
            "latency percentiles ride on the telemetry line"
        );
    }

    #[test]
    fn stats_verb_emits_prometheus_text() {
        let mut svc = Service::new(ServiceConfig::default());
        svc.handle_line(&query_line("a", 1));
        svc.flush();
        let text = svc
            .handle_line(r#"{"schema":"congest.serve","version":1,"op":"stats"}"#)
            .join("\n");
        assert!(text.contains("# TYPE serve_queries counter"), "{text}");
        assert!(text.contains("\nserve_queries 1"), "{text}");
        assert!(text.contains("# TYPE serve_latency_us histogram"), "{text}");
        assert!(text.contains("serve_latency_us_count 1"), "{text}");
        assert!(text.contains(r#"serve_latency_us_bucket{le="+Inf"} 1"#), "{text}");
    }

    #[test]
    fn periodic_telemetry_rides_after_every_nth_flush() {
        let mut svc = Service::new(ServiceConfig {
            telemetry_every: Some(2),
            ..ServiceConfig::default()
        });
        svc.handle_line(&query_line("a", 1));
        let first = svc.flush();
        assert!(
            !first.last().unwrap().contains("congest.serve.telemetry"),
            "batch 1 of 2: no telemetry yet"
        );
        svc.handle_line(&query_line("b", 2));
        let second = svc.flush();
        let tail = second.last().unwrap();
        assert!(tail.contains(r#""schema":"congest.serve.telemetry""#), "{tail}");
        assert!(tail.contains(r#""batches":2"#), "{tail}");
    }

    #[test]
    fn metrics_path_rewrites_prometheus_file_on_flush() {
        let path = std::env::temp_dir().join(format!(
            "congest_serve_metrics_{}.prom",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let mut svc = Service::new(ServiceConfig {
            metrics_path: Some(path.to_string_lossy().into_owned()),
            ..ServiceConfig::default()
        });
        svc.handle_line(&query_line("a", 1));
        svc.flush();
        let text = std::fs::read_to_string(&path).expect("flush must write the metrics file");
        assert!(text.contains("serve_queries 1"), "{text}");
        assert!(text.contains("serve_batches 1"), "{text}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn batch_summary_reports_the_full_cache_counter_family() {
        // A capacity-1 prepared cache: two triangle queries on distinct
        // graphs stage two clique topologies, the second evicting the
        // first.
        let mut svc = Service::new(ServiceConfig {
            prepared_cache_cap: 1,
            ..ServiceConfig::default()
        });
        for (id, n) in [("a", 64), ("b", 72)] {
            let line = format!(
                r#"{{"schema":"congest.serve","version":1,"op":"query","id":"{id}","graph":{{"generator":"planted_c2k","n":{n},"d":3,"k":2,"seed":5}},"scenario":{{"kind":"triangle","seed":1}}}}"#
            );
            assert!(svc.handle_line(&line).is_empty());
        }
        let out = svc.flush();
        let summary = json::parse(out.last().unwrap()).unwrap();
        let m = summary.get("metrics").unwrap();
        for (key, want) in [
            ("serve.cache.graph_hits", 0),
            ("serve.cache.graph_misses", 2),
            ("serve.cache.graph_evictions", 0),
            ("serve.cache.prepared_hits", 0),
            ("serve.cache.prepared_misses", 2),
            ("serve.cache.prepared_evictions", 1),
        ] {
            assert_eq!(
                m.get(key).and_then(|x| x.as_u64()),
                Some(want),
                "counter {key}"
            );
        }
    }

    #[test]
    fn responses_embed_a_compact_v3_report() {
        let mut svc = Service::new(ServiceConfig::default());
        svc.handle_line(&query_line("q", 3));
        let out = svc.flush();
        let resp = json::parse(&out[0]).unwrap();
        assert_eq!(resp.get("status").unwrap().as_str(), Some("ok"));
        let report = resp.get("report").unwrap();
        assert_eq!(
            report.get("schema").and_then(|s| s.as_str()),
            Some(congest::RUN_REPORT_SCHEMA)
        );
        assert!(report.get("rounds").unwrap().as_u64().unwrap() > 0);
        assert!(!out[0].contains('\n'), "response is one line");
    }

    #[test]
    fn malformed_lines_answer_immediately_and_count_in_the_summary() {
        let mut svc = Service::new(ServiceConfig::default());
        let err = svc.handle_line("this is not json");
        assert_eq!(err.len(), 1);
        assert!(err[0].contains(r#""status":"error""#));
        assert!(err[0].contains(r#""id":null"#));
        svc.handle_line(&query_line("ok", 1));
        let out = svc.flush();
        let summary = json::parse(out.last().unwrap()).unwrap();
        assert_eq!(summary.get("errors").unwrap().as_u64(), Some(1));
        assert_eq!(summary.get("queries").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn empty_flush_emits_nothing() {
        let mut svc = Service::new(ServiceConfig::default());
        assert!(svc.flush().is_empty());
        assert!(svc
            .handle_line(r#"{"schema":"congest.serve","version":1,"op":"flush"}"#)
            .is_empty());
    }

    #[test]
    fn serve_drives_a_whole_session_with_implicit_final_flush() {
        let mut svc = Service::new(ServiceConfig::default());
        let input = format!("{}\n{}\n", query_line("x", 1), query_line("y", 2));
        let mut out = Vec::new();
        svc.serve(input.as_bytes(), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "EOF flushed the batch");
        assert!(lines[2].contains("congest.serve.batch"));
    }

    #[test]
    fn compact_json_flattens_structural_whitespace_only() {
        let pretty = "{\n  \"a\": 1,\n  \"s\": \"x\\ny\"\n}";
        assert_eq!(compact_json(pretty), r#"{"a": 1,"s": "x\ny"}"#);
    }
}
