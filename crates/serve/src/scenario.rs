//! Query execution: a resolved [`Job`] (graph handle + optional staged
//! topology, both possibly cache hits) runs to a [`QueryOutcome`].
//!
//! Resolution and execution are deliberately split: the service resolves
//! caches *sequentially* (so hit/miss accounting is deterministic), then
//! executes resolved jobs *in parallel* over the rayon pool. Nothing in
//! here touches the caches — a `Job` owns shared handles to everything it
//! needs, so executions are independent and order-free, and every query is
//! seeded explicitly, so a batch's answers are byte-identical at any
//! thread count.

use std::sync::Arc;

use congest::{
    bits_for_domain, Bandwidth, FaultSpec, Prepared, ReliableConfig, RunReport, SimError,
    Simulation,
};
use graphlib::Graph;
use subgraph_detection::clique_detect::CliqueDetectNode;
use subgraph_detection::{
    detect_even_cycle, detect_even_cycle_faulty, detect_even_cycle_prepared, EvenCycleConfig,
};

use crate::protocol::ScenarioSpec;

/// One resolved, ready-to-run query.
pub struct Job {
    /// The (cached) input graph.
    pub graph: Arc<Graph>,
    /// The staged clique topology, when the scenario uses one.
    pub prepared: Option<Prepared>,
    /// What to run.
    pub scenario: ScenarioSpec,
}

/// What a query produced, before response formatting.
pub struct QueryOutcome {
    /// The detector's verdict.
    pub detected: bool,
    /// Rounds the run(s) consumed.
    pub rounds: usize,
    /// Total bits over all edges and rounds.
    pub total_bits: u64,
    /// Total messages.
    pub total_messages: u64,
    /// The schema-versioned run report for the response line.
    pub report: RunReport,
}

/// Stages the clique-scenario topology for `graph`: bandwidth and round
/// budget are functions of the topology alone (`Θ(log n)` bits, `Δ + 3`
/// rounds), so one `Prepared` serves every `K_s` query — any `s`, any
/// seed, any fault override — against the same graph.
pub fn prepare_clique(graph: &Arc<Graph>) -> Prepared {
    let horizon = clique_horizon(graph);
    Simulation::on_shared(Arc::clone(graph))
        .bandwidth(Bandwidth::Bits(bits_for_domain(graph.n().max(2))))
        .max_rounds(horizon + 2)
        .prepare()
}

/// The streaming horizon [`CliqueDetectNode`] needs: `Δ + 1`.
pub fn clique_horizon(graph: &Graph) -> usize {
    graph.max_degree() + 1
}

/// Stages the even-cycle topology for `graph`: the staged configuration is
/// a pure function of the graph plus `(k, edge_bound)` (bandwidth and
/// shard layout come from the schedule, which ignores seed and repetition
/// count), so one `Prepared` serves every clean `C_{2k}` query against the
/// same graph — any seed, any repetition budget.
pub fn prepare_even_cycle(graph: &Arc<Graph>, k: usize, edge_bound: Option<usize>) -> Prepared {
    let mut cfg = EvenCycleConfig::new(k);
    if let Some(m) = edge_bound {
        cfg = cfg.edge_bound(m);
    }
    subgraph_detection::prepare_even_cycle(graph, &cfg)
}

/// Runs a resolved job. Pure function of the job — no shared mutable
/// state, safe to call from any rayon worker.
pub fn execute(job: &Job) -> Result<QueryOutcome, SimError> {
    let label = job.scenario.label();
    match &job.scenario {
        ScenarioSpec::EvenCycle {
            k,
            repetitions,
            seed,
            edge_bound,
            faults,
            reliable,
        } => {
            let mut cfg = EvenCycleConfig::new(*k)
                .repetitions(*repetitions)
                .seed(*seed);
            if let Some(m) = edge_bound {
                cfg = cfg.edge_bound(*m);
            }
            match faults {
                None => {
                    // A cached staging (resolved by the service) skips the
                    // per-query bandwidth/shard setup; the run itself is
                    // byte-identical to the unstaged path.
                    let rep = match &job.prepared {
                        Some(p) => detect_even_cycle_prepared(cfg, p)?,
                        None => detect_even_cycle(&job.graph, cfg)?,
                    };
                    Ok(QueryOutcome {
                        detected: rep.detected,
                        rounds: rep.total_rounds,
                        total_bits: rep.total_bits,
                        total_messages: rep.stats.total_messages,
                        report: rep.run_report(&label),
                    })
                }
                Some(spec) => {
                    let transport = reliable.then(ReliableConfig::default);
                    let rep = detect_even_cycle_faulty(&job.graph, cfg, spec, transport)?;
                    Ok(QueryOutcome {
                        detected: rep.detected,
                        rounds: rep.total_rounds,
                        total_bits: rep.total_bits,
                        total_messages: rep.stats.total_messages,
                        report: rep.run_report(&label),
                    })
                }
            }
        }
        ScenarioSpec::CliqueDetect { s, seed, faults } => {
            let prepared = job
                .prepared
                .as_ref()
                .expect("clique jobs carry a staged topology");
            let horizon = clique_horizon(&job.graph);
            let s = *s;
            let ovr = congest::Overrides::new()
                .seed(*seed)
                .faults(faults.clone().unwrap_or(FaultSpec::None));
            let out = prepared.run_with(&ovr, move |_| CliqueDetectNode::new(s, horizon))?;
            // Under faults, only surviving nodes' rejects count as protocol
            // output — same convention as the faulty even-cycle driver.
            let detected = if faults.is_some() {
                out.surviving_node_rejects()
            } else {
                out.network_rejects()
            };
            Ok(QueryOutcome {
                detected,
                rounds: out.stats.rounds,
                total_bits: out.stats.total_bits,
                total_messages: out.stats.total_messages,
                report: out.report(&label),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::GraphSpec;

    fn job(graph: GraphSpec, scenario: ScenarioSpec) -> Job {
        let graph = Arc::new(graph.build());
        let prepared =
            matches!(scenario, ScenarioSpec::CliqueDetect { .. }).then(|| prepare_clique(&graph));
        Job {
            graph,
            prepared,
            scenario,
        }
    }

    #[test]
    fn triangle_detects_on_a_clique_and_not_on_a_cycle() {
        let hit = execute(&job(
            GraphSpec::CliqueGraph { n: 6 },
            ScenarioSpec::CliqueDetect {
                s: 3,
                seed: 1,
                faults: None,
            },
        ))
        .unwrap();
        assert!(hit.detected);
        let miss = execute(&job(
            GraphSpec::Cycle { n: 12 },
            ScenarioSpec::CliqueDetect {
                s: 3,
                seed: 1,
                faults: None,
            },
        ))
        .unwrap();
        assert!(!miss.detected);
        assert!(miss.total_bits > 0);
    }

    #[test]
    fn even_cycle_detects_a_planted_c4() {
        let out = execute(&job(
            GraphSpec::PlantedC2k {
                n: 48,
                d: 3,
                k: 2,
                seed: 7,
            },
            ScenarioSpec::EvenCycle {
                k: 2,
                // The detector is randomized with small per-repetition
                // success probability; amplification does the work (it
                // early-exits on the first detecting repetition).
                repetitions: 6000,
                seed: 11,
                edge_bound: None,
                faults: None,
                reliable: false,
            },
        ))
        .unwrap();
        assert!(out.detected, "planted C4 should be found");
    }

    #[test]
    fn shared_prepared_matches_detect_clique_driver() {
        let spec = GraphSpec::Gnp {
            n: 40,
            p: 0.15,
            seed: 21,
        };
        let g = spec.build();
        let reference = subgraph_detection::clique_detect::detect_clique(&g, 3).unwrap();
        let out = execute(&job(
            spec,
            ScenarioSpec::CliqueDetect {
                s: 3,
                seed: 0,
                faults: None,
            },
        ))
        .unwrap();
        assert_eq!(out.detected, reference.detected);
        assert_eq!(out.rounds, reference.rounds);
        assert_eq!(out.total_bits, reference.total_bits);
    }

    #[test]
    fn one_prepared_serves_many_seeds_and_fault_overrides() {
        let graph = Arc::new(
            GraphSpec::PlantedC2k {
                n: 64,
                d: 3,
                k: 2,
                seed: 5,
            }
            .build(),
        );
        let prepared = prepare_clique(&graph);
        for seed in 0..3u64 {
            for faults in [None, Some(FaultSpec::IndependentLoss(0.3))] {
                let j = Job {
                    graph: Arc::clone(&graph),
                    prepared: Some(prepared.clone()),
                    scenario: ScenarioSpec::CliqueDetect {
                        s: 3,
                        seed,
                        faults: faults.clone(),
                    },
                };
                let a = execute(&j).unwrap();
                let b = execute(&j).unwrap();
                assert_eq!(a.detected, b.detected, "reruns must agree");
                assert_eq!(a.report.to_json(), b.report.to_json());
            }
        }
    }
}
