//! The `congest-serve` binary: JSONL batch service on stdin/stdout, or a
//! Unix socket with `--socket PATH` (one connection at a time; the caches
//! persist across connections).

use std::io::{self, BufReader};
use std::process::ExitCode;

use serve::{Service, ServiceConfig};

const USAGE: &str = "\
congest-serve — batched CONGEST detection queries over JSONL

USAGE:
    congest-serve [--cache-cap N] [--socket PATH]
                  [--metrics-path PATH] [--telemetry-every N]

OPTIONS:
    --cache-cap N         Max cached graphs / staged topologies (default 32)
    --socket PATH         Serve a Unix socket instead of stdin/stdout
    --metrics-path PATH   Rewrite cumulative metrics (Prometheus text
                          format) to PATH after every flush
    --telemetry-every N   Emit a congest.serve.telemetry line after every
                          N-th flush
    -h, --help            Print this help

PROTOCOL (one JSON object per line):
    {\"schema\":\"congest.serve\",\"version\":1,\"op\":\"query\",\"id\":\"q0\",
     \"graph\":{\"generator\":\"planted_c2k\",\"n\":96,\"d\":3,\"k\":2,\"seed\":7},
     \"scenario\":{\"kind\":\"even_cycle\",\"k\":2,\"seed\":11}}
    {\"schema\":\"congest.serve\",\"version\":1,\"op\":\"flush\"}
    {\"schema\":\"congest.serve\",\"version\":1,\"op\":\"telemetry\"}
    {\"schema\":\"congest.serve\",\"version\":1,\"op\":\"stats\"}

End of input implies a final flush. See DESIGN.md §8 for the full schema.";

struct Args {
    cache_cap: usize,
    socket: Option<String>,
    metrics_path: Option<String>,
    telemetry_every: Option<u64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        cache_cap: 32,
        socket: None,
        metrics_path: None,
        telemetry_every: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--cache-cap" => {
                let v = it.next().ok_or("--cache-cap needs a value")?;
                args.cache_cap = v
                    .parse()
                    .map_err(|_| format!("invalid --cache-cap {v:?}"))?;
            }
            "--socket" => {
                args.socket = Some(it.next().ok_or("--socket needs a path")?);
            }
            "--metrics-path" => {
                args.metrics_path = Some(it.next().ok_or("--metrics-path needs a path")?);
            }
            "--telemetry-every" => {
                let v = it.next().ok_or("--telemetry-every needs a value")?;
                args.telemetry_every = Some(
                    v.parse()
                        .map_err(|_| format!("invalid --telemetry-every {v:?}"))?,
                );
            }
            "-h" | "--help" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("congest-serve: {e}");
            return ExitCode::from(2);
        }
    };
    let cfg = ServiceConfig {
        graph_cache_cap: args.cache_cap,
        prepared_cache_cap: args.cache_cap,
        metrics_path: args.metrics_path,
        telemetry_every: args.telemetry_every,
    };
    let mut svc = Service::new(cfg);

    let result = match args.socket {
        None => {
            let stdin = io::stdin();
            let stdout = io::stdout();
            svc.serve(stdin.lock(), stdout.lock())
        }
        Some(path) => serve_socket(&mut svc, &path),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("congest-serve: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(unix)]
fn serve_socket(svc: &mut Service, path: &str) -> io::Result<()> {
    use std::os::unix::net::UnixListener;

    // A stale socket file from a previous run would make bind fail.
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;
    eprintln!("congest-serve: listening on {path}");
    for stream in listener.incoming() {
        let stream = stream?;
        let reader = BufReader::new(stream.try_clone()?);
        // A client error ends that connection, not the server.
        if let Err(e) = svc.serve(reader, stream) {
            eprintln!("congest-serve: connection error: {e}");
        }
    }
    Ok(())
}

#[cfg(not(unix))]
fn serve_socket(_svc: &mut Service, _path: &str) -> io::Result<()> {
    Err(io::Error::new(
        io::ErrorKind::Unsupported,
        "--socket requires a Unix platform",
    ))
}
