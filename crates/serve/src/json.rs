//! A minimal JSON reader for the serve protocol.
//!
//! The workspace has no serde (every dependency is a vendored shim), and the
//! existing observability layer hand-*writes* JSON; the service also needs
//! to hand-*read* it. This is a small recursive-descent parser over the full
//! JSON grammar — objects, arrays, strings with escapes, numbers, booleans,
//! null — returning a [`Value`] tree with typed accessors. Requests are one
//! object per line, so inputs are small and a tree parse is the simple,
//! deterministic choice.

use std::fmt::Write as _;

/// A parsed JSON value. Object entries keep their source order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`, which covers every count the
    /// protocol uses).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on objects (`None` elsewhere or when absent).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        if n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 {
            Some(n as u64)
        } else {
            None
        }
    }

    /// [`Value::as_u64`] narrowed to `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|n| usize::try_from(n).ok())
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parses one JSON document, rejecting trailing garbage.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Value::Str),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!("unexpected '{}' at byte {}", b as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("invalid number {text:?} at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pair: a high surrogate must be
                            // followed by `\uDC00..`; anything else is an
                            // error (the protocol never emits lone halves).
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err("invalid low surrogate".into());
                                }
                                let c = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(c).ok_or("invalid surrogate pair")?
                            } else {
                                char::from_u32(cp).ok_or("invalid \\u escape")?
                            };
                            out.push(ch);
                        }
                        other => {
                            return Err(format!("invalid escape '\\{}'", other as char));
                        }
                    }
                }
                Some(b) if b < 0x20 => return Err("raw control character in string".into()),
                Some(_) => {
                    // Copy one UTF-8 scalar (multi-byte sequences intact).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8")?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        if self.pos + 4 > self.bytes.len() {
            return Err("truncated \\u escape".into());
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| "invalid \\u escape")?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| "invalid \\u escape")?;
        self.pos += 4;
        Ok(cp)
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            entries.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }
}

/// Escapes `s` for embedding in a JSON string literal (mirror of the
/// writer-side escaping in `congest::obsv`).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_request_shapes() {
        let v = parse(
            r#"{"schema":"congest.serve","version":1,"op":"query","id":"q1",
                "graph":{"generator":"gnp","n":48,"p":0.05,"seed":5},
                "scenario":{"kind":"even_cycle","k":2,"reliable":true,"faults":null},
                "tags":[1,2,3]}"#,
        )
        .unwrap();
        assert_eq!(v.get("schema").unwrap().as_str(), Some("congest.serve"));
        assert_eq!(v.get("version").unwrap().as_u64(), Some(1));
        let g = v.get("graph").unwrap();
        assert_eq!(g.get("n").unwrap().as_usize(), Some(48));
        assert_eq!(g.get("p").unwrap().as_f64(), Some(0.05));
        let s = v.get("scenario").unwrap();
        assert_eq!(s.get("reliable").unwrap().as_bool(), Some(true));
        assert_eq!(s.get("faults"), Some(&Value::Null));
        assert_eq!(
            v.get("tags").unwrap(),
            &Value::Arr(vec![Value::Num(1.0), Value::Num(2.0), Value::Num(3.0)])
        );
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = parse(r#""a\"b\\c\n\tAé""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\n\tA\u{e9}"));
        let v = parse(r#""😀""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1F600}"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "[1,]",
            "{\"a\":1} extra",
            "\"unterminated",
            "nul",
            "01a",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn numbers_parse_with_exponents_and_signs() {
        assert_eq!(parse("-2.5e3").unwrap().as_f64(), Some(-2500.0));
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
    }

    #[test]
    fn escape_mirrors_parser() {
        let original = "line1\nline2\t\"quoted\" back\\slash\u{1}";
        let wrapped = format!("\"{}\"", escape(original));
        assert_eq!(parse(&wrapped).unwrap().as_str(), Some(original));
    }
}
