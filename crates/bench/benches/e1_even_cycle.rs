//! E1 — Theorem 1.1: wall-clock of one repetition of the even-cycle
//! detector across `n`, and of the gather baseline, so the sweep's shape is
//! also visible in simulator time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use subgraph_detection as detection;

fn bench_even_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_even_cycle_k2");
    group.sample_size(10);
    for n in [128usize, 256, 512] {
        let g = bench::experiments::bench_graph(n, 42);
        group.bench_with_input(BenchmarkId::new("detector_one_rep", n), &g, |b, g| {
            b.iter(|| {
                let cfg = detection::EvenCycleConfig::new(2).repetitions(1).seed(1);
                detection::detect_even_cycle(g, cfg).unwrap()
            })
        });
        let c4 = graphlib::generators::cycle(4);
        group.bench_with_input(BenchmarkId::new("gather_baseline", n), &g, |b, g| {
            b.iter(|| detection::detect_gather(g, &c4).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_even_cycle);
criterion_main!(benches);
