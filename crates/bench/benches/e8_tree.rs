//! E8 — constant-round tree detection: one repetition across `n` (the
//! rounds stay constant; wall time grows only with simulator size).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;
use subgraph_detection as detection;

fn bench_tree(c: &mut Criterion) {
    let pattern = detection::TreePattern::path(4);
    let mut group = c.benchmark_group("e8_tree");
    group.sample_size(20);
    for n in [64usize, 256, 1024] {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(n as u64);
        let g = graphlib::generators::gnm(n, 2 * n, &mut rng);
        group.bench_with_input(BenchmarkId::new("one_rep_path4", n), &g, |b, g| {
            b.iter(|| detection::detect_tree(g, &pattern, 1, 7).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tree);
criterion_main!(benches);
