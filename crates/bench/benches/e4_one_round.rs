//! E4 — Theorem 5.1: cost of μ-sampling plus one-round protocol
//! evaluation, per trial, across budgets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use subgraph_detection::triangle::OneRoundStrategy;

fn bench_one_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_one_round");
    group.sample_size(20);
    for budget in [1usize, 8] {
        group.bench_with_input(
            BenchmarkId::new("error_500_trials_n16", budget),
            &budget,
            |b, &budget| {
                b.iter(|| {
                    lowerbounds::detection_error(16, OneRoundStrategy::Prefix(budget), 500, 3)
                })
            },
        );
    }
    group.bench_function("information_2000_samples_n16", |b| {
        b.iter(|| lowerbounds::information_about_xbc(16, OneRoundStrategy::Prefix(2), 2000, 5))
    });
    group.finish();
}

criterion_group!(benches, bench_one_round);
criterion_main!(benches);
