//! E5 — Lemma 1.3 / K_s listing: centralized counting vs the
//! congested-clique listing run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::SeedableRng;

fn bench_listing(c: &mut Criterion) {
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
    let g = graphlib::generators::gnp(64, 0.25, &mut rng);
    let mut group = c.benchmark_group("e5_listing");
    group.sample_size(10);
    for s in [3usize, 4] {
        group.bench_with_input(BenchmarkId::new("centralized_count", s), &s, |b, &s| {
            b.iter(|| graphlib::cliques::count_ksub(&g, s))
        });
        group.bench_with_input(BenchmarkId::new("congested_clique_list", s), &s, |b, &s| {
            b.iter(|| lowerbounds::list_cliques_congested(&g, s, 1).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_listing);
criterion_main!(benches);
