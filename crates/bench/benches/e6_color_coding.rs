//! E6 — color-coding amplification: cost of a single repetition on the
//! bare cycle (the unit the repetition count multiplies).

use criterion::{criterion_group, criterion_main, Criterion};
use subgraph_detection as detection;

fn bench_repetition(c: &mut Criterion) {
    let g = graphlib::generators::cycle(4);
    let mut group = c.benchmark_group("e6_color_coding");
    group.bench_function("one_rep_k2_on_c4", |b| {
        b.iter(|| {
            let cfg = detection::EvenCycleConfig::new(2)
                .repetitions(1)
                .seed(3)
                .edge_bound(8);
            detection::detect_even_cycle(&g, cfg).unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_repetition);
criterion_main!(benches);
