//! E3 — Theorem 4.1: cost of the full fooling adversary (enumerate n³
//! triangles, bucket transcripts, find the K^(3)(2) block, splice).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lowerbounds::{run_adversary, IdHashAlgo};

fn bench_adversary(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_fooling");
    group.sample_size(10);
    for n in [8usize, 16, 32] {
        group.bench_with_input(BenchmarkId::new("adversary_2bit", n), &n, |b, &n| {
            b.iter(|| run_adversary(&IdHashAlgo { bits: 2 }, n))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_adversary);
criterion_main!(benches);
