//! E2 — Theorem 1.2: cost of building `G_{k,n}` and of the two-party
//! simulation of a real detection run over it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lowerbounds::FamilyLayout;

fn bench_family(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_family");
    group.sample_size(10);
    for nc in [36usize, 100] {
        group.bench_with_input(BenchmarkId::new("build_gxy_k2", nc), &nc, |b, &nc| {
            let lay = FamilyLayout::new(2, nc);
            b.iter(|| lay.build(&[(0, 1), (2, 3)], &[(1, 1)]))
        });
    }
    group.bench_function("simulate_gather_k2_n36", |b| {
        b.iter(|| bench::experiments::e2_superlinear(2, &[36], 7))
    });
    group.finish();
}

criterion_group!(benches, bench_family);
criterion_main!(benches);
