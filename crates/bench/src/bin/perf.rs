//! Records wall-clock perf baselines across thread counts.
//!
//! Usage:
//!   perf [--threads 1,4] [--out PATH]   orchestrate and write the report
//!   perf --run-reports [--out-dir DIR]   export the canonical run reports
//!                                        (schema-versioned JSON, one file
//!                                        per scenario; default dir `.`)
//!   perf --summary                       print the canonical run reports
//!                                        as human-readable tables
//!   perf --emit                          (internal) time the workloads at
//!                                        the current RAYON_NUM_THREADS and
//!                                        print one JSON entry per line
//!
//! The rayon pool is process-global and reads `RAYON_NUM_THREADS` exactly
//! once, so every requested thread count runs in its own subprocess (this
//! same binary with `--emit`). The parent merges the entries into
//! `BENCH_<date>.json` — committed to the repo so the perf trajectory is
//! tracked in-tree.

use bench::perf;
use std::process::Command;
use std::time::{SystemTime, UNIX_EPOCH};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--emit") {
        for entry in perf::run_workloads() {
            println!("{}", entry.to_json());
        }
        return;
    }

    if args.iter().any(|a| a == "--summary") {
        for report in perf::canonical_run_reports() {
            print!("{}", report.summary_table());
            println!();
        }
        return;
    }

    if args.iter().any(|a| a == "--run-reports") {
        let mut out_dir = ".".to_string();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            if arg == "--out-dir" {
                out_dir = it.next().expect("--out-dir needs a path").clone();
            }
        }
        for report in perf::canonical_run_reports() {
            let path = format!("{out_dir}/run_report_{}.json", report.label);
            std::fs::write(&path, report.to_json()).expect("failed to write run report");
            eprintln!("==> wrote {path}");
        }
        return;
    }

    let mut threads: Vec<String> = vec!["1".into(), "4".into()];
    let mut out_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threads" => {
                let list = it.next().expect("--threads needs a comma-separated list");
                threads = list.split(',').map(|s| s.trim().to_string()).collect();
            }
            "--out" => out_path = Some(it.next().expect("--out needs a path").clone()),
            other => panic!("unknown argument: {other}"),
        }
    }

    let exe = std::env::current_exe().expect("cannot locate own binary");
    let mut lines: Vec<String> = Vec::new();
    for t in &threads {
        eprintln!("==> timing workloads at RAYON_NUM_THREADS={t}");
        let out = Command::new(&exe)
            .arg("--emit")
            .env("RAYON_NUM_THREADS", t)
            .output()
            .expect("failed to spawn --emit subprocess");
        assert!(
            out.status.success(),
            "--emit run at {t} threads failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8(out.stdout).expect("entries not UTF-8");
        lines.extend(stdout.lines().map(str::to_string));
    }

    let now = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .expect("clock before epoch")
        .as_secs();
    let date = perf::date_stamp(now);
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let doc = perf::render_report(&date, host_cpus, &lines);
    let path = out_path.unwrap_or_else(|| format!("BENCH_{date}.json"));
    std::fs::write(&path, &doc).expect("failed to write report");
    eprintln!("==> wrote {path}");
    print!("{doc}");
}
