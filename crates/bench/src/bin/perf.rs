//! Records wall-clock perf baselines across thread counts.
//!
//! Usage:
//!   perf [--threads 1,4] [--out PATH]   orchestrate and write the report
//!   perf --check [--against PATH] [--tolerance PCT] [--smoke]
//!                                        re-time the workloads and fail
//!                                        (exit 1) on a perf regression
//!                                        beyond PCT% (default 20) against
//!                                        the latest committed BENCH_*.json
//!   perf --run-reports [--out-dir DIR]   export the canonical run reports
//!                                        (schema-versioned JSON, one file
//!                                        per scenario; default dir `.`)
//!   perf --summary                       print the canonical run reports
//!                                        as human-readable tables
//!   perf --profile                       run the canonical scenarios with
//!                                        the engine self-profiler on and
//!                                        print folded stacks (stdout, one
//!                                        `frame;frame value` line per
//!                                        engine section — flamegraph
//!                                        input) plus a summary table
//!                                        (stderr)
//!   perf --e3-budget-secs S              budgeted E3-scale smoke: double n
//!                                        from 10^4 toward 10^6, stopping
//!                                        before the wall clock would pass
//!                                        S seconds; prints one JSON entry
//!                                        per size (stdout) and the largest
//!                                        size reached (stderr)
//!   perf --emit [--smoke]                (internal) time the workloads at
//!                                        the current RAYON_NUM_THREADS and
//!                                        print one JSON entry per line
//!
//! The rayon pool is process-global and reads `RAYON_NUM_THREADS` exactly
//! once, so every requested thread count runs in its own subprocess (this
//! same binary with `--emit`). The parent merges the entries into
//! `BENCH_<date>.json` — committed to the repo so the perf trajectory is
//! tracked in-tree.

use bench::perf;
use std::process::Command;
use std::time::{SystemTime, UNIX_EPOCH};

fn host_cpus() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Times the workloads in one `--emit` subprocess per thread count and
/// returns the printed entry lines.
fn emit_at_thread_counts(threads: &[String], smoke: bool) -> Vec<String> {
    let exe = std::env::current_exe().expect("cannot locate own binary");
    let mut lines = Vec::new();
    for t in threads {
        eprintln!("==> timing workloads at RAYON_NUM_THREADS={t}");
        let mut cmd = Command::new(&exe);
        cmd.arg("--emit").env("RAYON_NUM_THREADS", t);
        if smoke {
            cmd.arg("--smoke");
        }
        let out = cmd.output().expect("failed to spawn --emit subprocess");
        assert!(
            out.status.success(),
            "--emit run at {t} threads failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8(out.stdout).expect("entries not UTF-8");
        lines.extend(stdout.lines().map(str::to_string));
    }
    lines
}

/// Latest committed baseline (`BENCH_*.json` sorts by date lexically).
fn find_latest_baseline() -> Option<String> {
    let mut names: Vec<String> = std::fs::read_dir(".")
        .ok()?
        .filter_map(|e| e.ok())
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        .collect();
    names.sort();
    names.pop()
}

fn run_check(args: &[String]) -> ! {
    let mut against: Option<String> = None;
    let mut current_path: Option<String> = None;
    let mut tolerance = 20.0f64;
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--against" => against = Some(it.next().expect("--against needs a path").clone()),
            "--current" => current_path = Some(it.next().expect("--current needs a path").clone()),
            "--tolerance" => {
                tolerance = it
                    .next()
                    .expect("--tolerance needs a percentage")
                    .parse()
                    .expect("--tolerance must be a number")
            }
            _ => {}
        }
    }
    let Some(path) = against.or_else(find_latest_baseline) else {
        eprintln!("==> perf gate: no BENCH_*.json baseline found, skipping");
        std::process::exit(0);
    };
    let doc = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
    let cpus = host_cpus();
    if perf::parse_host_cpus(&doc) != Some(cpus) {
        eprintln!(
            "==> perf gate: baseline {path} is from a host with {:?} CPUs (this host: {cpus}), skipping",
            perf::parse_host_cpus(&doc)
        );
        std::process::exit(0);
    }
    // Current numbers: either a freshly written report (--current, used by
    // bench.sh right after recording), or re-timed here at every thread
    // count the baseline has comparable (non-oversubscribed) entries for.
    let current = if let Some(cur_path) = current_path {
        let cur_doc = std::fs::read_to_string(&cur_path)
            .unwrap_or_else(|e| panic!("cannot read current report {cur_path}: {e}"));
        perf::parse_entries(&cur_doc)
    } else {
        let mut counts: Vec<usize> = perf::parse_entries(&doc)
            .iter()
            .filter(|e| !e.oversubscribed && e.threads <= cpus)
            .map(|e| e.threads)
            .collect();
        counts.sort_unstable();
        counts.dedup();
        let threads: Vec<String> = counts.iter().map(|t| t.to_string()).collect();
        let lines = emit_at_thread_counts(&threads, smoke);
        perf::parse_entries(&lines.join("\n"))
    };
    let outcome = perf::regression_gate(&doc, &current, cpus, tolerance);
    for note in &outcome.skipped {
        eprintln!("==> perf gate: skipped {note}");
    }
    eprintln!(
        "==> perf gate: {} entr{} compared against {path} (tolerance +{tolerance}%)",
        outcome.checked,
        if outcome.checked == 1 { "y" } else { "ies" }
    );
    // The recorder-overhead A/B is self-contained (both arms are in the
    // current run), so it rides every --check regardless of baseline age.
    let overhead = perf::recorder_overhead_gate(&current, 5.0);
    for note in &overhead.skipped {
        eprintln!("==> perf gate: skipped {note}");
    }
    eprintln!(
        "==> perf gate: {} recorder-overhead pair{} checked (limit +5%)",
        overhead.checked,
        if overhead.checked == 1 { "" } else { "s" }
    );
    if outcome.passed() && overhead.passed() {
        eprintln!("==> perf gate: PASS");
        std::process::exit(0);
    }
    for f in outcome.failures.iter().chain(&overhead.failures) {
        eprintln!("==> perf gate: REGRESSION {f}");
    }
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--emit") {
        let smoke = args.iter().any(|a| a == "--smoke");
        // --serve-only: just the serve-QPS workload — for appending serve
        // entries to an existing baseline without re-timing E1–E3.
        let entries = if args.iter().any(|a| a == "--serve-only") {
            let sizes = if smoke {
                perf::SERVE_SMOKE_SIZES
            } else {
                perf::SERVE_FULL_SIZES
            };
            sizes.iter().map(|&q| perf::serve_qps_workload(q)).collect()
        } else if smoke {
            perf::run_smoke_workloads()
        } else {
            perf::run_workloads()
        };
        for entry in entries {
            println!("{}", entry.to_json());
        }
        return;
    }

    if args.iter().any(|a| a == "--check") {
        run_check(&args);
    }

    if let Some(i) = args.iter().position(|a| a == "--e3-budget-secs") {
        let secs: f64 = args
            .get(i + 1)
            .expect("--e3-budget-secs needs a number of seconds")
            .parse()
            .expect("--e3-budget-secs must be a number");
        let entries = perf::e3_budget_entries(secs, 10_000, 1_000_000);
        for entry in &entries {
            println!("{}", entry.to_json());
        }
        let top = entries.last().expect("budget sweep always runs once");
        eprintln!(
            "==> e3 budget sweep: reached n={} in {:.1}s budget ({:.3} ms at the top size)",
            top.n, secs, top.wall_ms
        );
        return;
    }

    if args.iter().any(|a| a == "--profile") {
        let (folded, table) = perf::profile_canonical();
        eprintln!("==> engine self-profile over the canonical scenarios");
        eprint!("{table}");
        print!("{folded}");
        return;
    }

    if args.iter().any(|a| a == "--summary") {
        for report in perf::canonical_run_reports() {
            print!("{}", report.summary_table());
            println!();
        }
        return;
    }

    if args.iter().any(|a| a == "--run-reports") {
        let mut out_dir = ".".to_string();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            if arg == "--out-dir" {
                out_dir = it.next().expect("--out-dir needs a path").clone();
            }
        }
        for report in perf::canonical_run_reports() {
            let path = format!("{out_dir}/run_report_{}.json", report.label);
            std::fs::write(&path, report.to_json()).expect("failed to write run report");
            eprintln!("==> wrote {path}");
        }
        return;
    }

    let mut threads: Vec<String> = vec!["1".into(), "4".into()];
    let mut out_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threads" => {
                let list = it.next().expect("--threads needs a comma-separated list");
                threads = list.split(',').map(|s| s.trim().to_string()).collect();
            }
            "--out" => out_path = Some(it.next().expect("--out needs a path").clone()),
            other => panic!("unknown argument: {other}"),
        }
    }

    let lines = emit_at_thread_counts(&threads, false);

    let now = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .expect("clock before epoch")
        .as_secs();
    let date = perf::date_stamp(now);
    let cpus = host_cpus();
    let doc = perf::render_report(&date, cpus, &lines);
    let path = out_path.unwrap_or_else(|| format!("BENCH_{date}.json"));
    std::fs::write(&path, &doc).expect("failed to write report");
    eprintln!("==> wrote {path}");
    for line in perf::speedup_summary(&perf::parse_entries(&doc), cpus) {
        eprintln!("==> speedup: {line}");
    }
    print!("{doc}");
}
