//! Prints the paper-shaped series for each experiment (see EXPERIMENTS.md).
//!
//! Usage: `cargo run --release -p bench --bin report -- [e1|e2|e2b|e3|e4|e5|e6|e7|e8|e9|all]`

use bench::experiments as exp;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let all = which == "all";
    if all || which == "e1" {
        e1();
    }
    if all || which == "e2" {
        e2();
    }
    if all || which == "e2b" {
        e2b();
    }
    if all || which == "e3" {
        e3();
    }
    if all || which == "e4" {
        e4();
    }
    if all || which == "e5" {
        e5();
    }
    if all || which == "e6" {
        e6();
    }
    if all || which == "e7" {
        e7();
    }
    if all || which == "e8" {
        e8();
    }
    if all || which == "e9" {
        e9();
    }
}

fn e1() {
    println!("\n=== E1: Theorem 1.1 — C_2k detection is sublinear ===");
    for k in [2usize, 3] {
        let sizes: Vec<usize> = (6..=11).map(|e| 1usize << e).collect();
        let rows = exp::e1_even_cycle(k, &sizes, 1, 42);
        println!(
            "k={k}: target exponent 1-1/(k(k-1)) = {:.3}",
            1.0 - 1.0 / (k as f64 * (k as f64 - 1.0))
        );
        println!(
            "{:>8} {:>16} {:>14} {:>16}",
            "n", "detector rounds", "bound shape", "baseline rounds"
        );
        for r in &rows {
            println!(
                "{:>8} {:>16} {:>14.1} {:>16}",
                r.n, r.detector_rounds, r.bound, r.baseline_rounds
            );
        }
        let pts: Vec<(usize, usize)> = rows.iter().map(|r| (r.n, r.detector_rounds)).collect();
        let base_pts: Vec<(usize, usize)> = rows.iter().map(|r| (r.n, r.baseline_rounds)).collect();
        println!(
            "fitted exponent: detector {:.3} (target {:.3}), baseline {:.3} (linear ~1)",
            exp::fitted_exponent(&pts),
            1.0 - 1.0 / (k as f64 * (k as f64 - 1.0)),
            exp::fitted_exponent(&base_pts)
        );
    }
    println!("\nablation (k=3, 20000 reps/phase): each phase covers only its half");
    println!(
        "{:>18} {:>14} {:>14}",
        "scenario", "Phase I rate", "Phase II rate"
    );
    for r in exp::e1_ablation(20_000, 31) {
        println!(
            "{:>18} {:>14.5} {:>14.5}",
            r.scenario, r.phase1_rate, r.phase2_rate
        );
    }
}

fn e2() {
    println!("\n=== E2: Theorem 1.2 — the near-quadratic family G_{{k,n}} ===");
    for k in [2usize, 3] {
        let copies: Vec<usize> = [16usize, 36, 64, 100, 144].to_vec();
        let rows = exp::e2_superlinear(k, &copies, 7);
        println!("k={k}: round LB shape n^(2-1/k)/(Bk)");
        println!(
            "{:>6} {:>8} {:>6} {:>8} {:>10} {:>12} {:>10} {:>14} {:>8}",
            "n", "|V(G)|", "diam", "cut", "cut bound", "sim bits", "rounds", "implied R LB", "L3.1"
        );
        for r in &rows {
            println!(
                "{:>6} {:>8} {:>6} {:>8} {:>10} {:>12} {:>10} {:>14.1} {:>8}",
                r.n_copies,
                r.graph_size,
                r.diameter,
                r.cut,
                r.cut_bound,
                r.sim_bits,
                r.rounds,
                r.implied_round_lb,
                r.lemma31_ok
            );
        }
    }
}

fn e2b() {
    println!("\n=== E2b: §3.4 — the bipartite variant (skeleton metrics) ===");
    let rows = exp::e2b_bipartite(2, &[16, 64, 144, 256]);
    println!(
        "{:>6} {:>8} {:>10} {:>8} {:>9} {:>14}",
        "n", "|V(G)|", "bipartite", "cut", "gadgets", "bound (s=2)"
    );
    for r in &rows {
        println!(
            "{:>6} {:>8} {:>10} {:>8} {:>9} {:>14.1}",
            r.n_copies, r.graph_size, r.bipartite, r.cut, r.gadgets, r.bound
        );
    }
}

fn e3() {
    println!("\n=== E3: Theorem 4.1 — fooling deterministic triangle detectors ===");
    for n in [16usize, 32] {
        println!("namespace 3 x {n}:");
        println!(
            "{:>7} {:>13} {:>14} {:>14} {:>8}",
            "c bits", "transcripts", "largest class", "class floor", "fooled"
        );
        for r in exp::e3_fooling(n) {
            println!(
                "{:>7} {:>13} {:>14} {:>14.2} {:>8}",
                r.bits, r.transcript_classes, r.largest_class, r.class_floor, r.fooled
            );
        }
    }
}

fn e4() {
    println!("\n=== E4: Theorem 5.1 — one-round triangle detection needs B = Ω(Δ) ===");
    for n in [12usize, 24] {
        println!("pendants per special node: n = {n} (Δ = n + 2)");
        println!(
            "{:>8} {:>12} {:>10} {:>12} {:>14}",
            "budget", "msg bits", "error", "I(Xbc;M)", "L5.4 bound"
        );
        for r in exp::e4_one_round(n, 3000, 11) {
            println!(
                "{:>8} {:>12} {:>10.4} {:>12.4} {:>14.4}",
                r.budget, r.message_bits, r.error, r.information, r.leakage_bound
            );
        }
    }
}

fn e5() {
    println!("\n=== E5: Lemma 1.3 + congested-clique K_s listing ===");
    for (s, p) in [(3usize, 0.25), (4, 0.3), (5, 0.4)] {
        let sizes = [32usize, 48, 64, 96];
        let rows = exp::e5_listing(s, &sizes, p, 13);
        println!("s={s} (G(n, {p})); round shape n^(1-2/{s})");
        println!(
            "{:>6} {:>9} {:>8} {:>10} {:>12} {:>10} {:>7}",
            "n", "cliques", "rounds", "bound", "L1.3 ratio", "LB cert", "exact"
        );
        for r in &rows {
            println!(
                "{:>6} {:>9} {:>8} {:>10.1} {:>12.4} {:>10.3} {:>7}",
                r.n, r.cliques, r.rounds, r.bound, r.lemma_ratio, r.certificate, r.exact
            );
        }
    }
}

fn e6() {
    println!("\n=== E6: §6 — color-coding success amplification ===");
    println!(
        "{:>4} {:>8} {:>20} {:>18}",
        "k", "reps", "empirical success", "guarantee (2k)^-2k"
    );
    for k in [2usize, 3] {
        let r = exp::e6_color_coding(k, if k == 2 { 3000 } else { 60000 }, 17);
        println!(
            "{:>4} {:>8} {:>20.5} {:>18.6}",
            r.k, r.reps, r.empirical_success, r.guarantee
        );
    }
}

fn e7() {
    println!("\n=== E7: §6 prerequisite — the even-cycle Turán bound ===");
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>10}",
        "n", "m (C4-free)", "M(n,2)", "high-deg", "cap M/n^δ"
    );
    for r in exp::e7_turan(&[3, 5, 7, 11, 13]) {
        println!(
            "{:>8} {:>12} {:>12} {:>12} {:>10}",
            r.n, r.m, r.edge_bound, r.high_degree_nodes, r.high_degree_cap
        );
    }
    println!("hub-heavy graphs, k=3 (δ = 1/2): high-degree count vs the Phase-I cap");
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>10}",
        "n", "m (PA graph)", "M(n,3)", "high-deg", "cap M/n^δ"
    );
    for r in exp::e7b_high_degree(&[64, 256, 1024, 4096], 23) {
        println!(
            "{:>8} {:>12} {:>12} {:>12} {:>10}",
            r.n, r.m, r.edge_bound, r.high_degree_nodes, r.high_degree_cap
        );
    }
}

fn e9() {
    println!("\n=== E9: §1.2 contrast — the property-testing relaxation ===");
    println!(
        "{:>18} {:>8} {:>18} {:>14} {:>14}",
        "scenario", "probes", "tester detection", "exact detects", "exact rounds"
    );
    for r in exp::e9_property_testing(300, 29) {
        println!(
            "{:>18} {:>8} {:>18.3} {:>14} {:>14}",
            r.scenario, r.probes, r.tester_detection, r.exact_detects, r.exact_rounds
        );
    }
}

fn e8() {
    println!("\n=== E8: constant-round tree detection ([12]) ===");
    println!(
        "{:>8} {:>14} {:>14} {:>9}",
        "n", "tree rounds", "LOCAL rounds", "correct"
    );
    for r in exp::e8_tree(&[32, 64, 128, 256, 512], 2000, 19) {
        println!(
            "{:>8} {:>14} {:>14} {:>9}",
            r.n, r.tree_rounds, r.local_rounds, r.correct
        );
    }
}
