//! Machine-readable perf baselines.
//!
//! The criterion benches time micro-kernels; this module times the
//! *end-to-end* experiments the thread pool is supposed to speed up (E1
//! even-cycle detection, E2 superlinear-family simulation, E3-scale — the
//! sharded engine at `n = 10^5`) and renders the wall-clock numbers as a
//! small JSON document, so the repo's perf trajectory is recorded in-tree
//! (`BENCH_<date>.json` at the workspace root, one file per measurement
//! day).
//!
//! The pool sizes itself once per process from `RAYON_NUM_THREADS`, so a
//! multi-thread-count report needs one subprocess per count — that
//! orchestration lives in the `perf` binary (`src/bin/perf.rs`) and
//! `scripts/bench.sh`; this module is the in-process part: run the
//! workloads at the *current* thread count and serialize entries.

use crate::experiments as exp;
use congest::{
    EventLog, FaultSpec, FlightConfig, FlightRecorder, Profiler, ReliableConfig, RunReport,
    SimEvent,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;
use std::time::Instant;
use subgraph_detection as detection;

/// Schema tag of the perf-baseline document ([`render_report`]).
pub const PERF_REPORT_SCHEMA: &str = "congest.perf_report";
/// Version of the perf-baseline document layout. v2 added the optional
/// `shards` and `peak_rss_kb` columns (E3-scale entries); v3 added the
/// optional `p99_ms` column (serve-QPS entries); v4 added the optional
/// `recorder` flag (the flight-recorder on/off A/B pair `e1_flight` /
/// `e1_even_cycle`). Older documents still parse — the new fields default
/// to 0/absent.
pub const PERF_REPORT_VERSION: u32 = 4;

/// One timed workload: `experiment` at size `n` took `wall_ms` on a pool of
/// `threads` lanes.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfEntry {
    /// Experiment tag (`"e1_even_cycle"`, `"e2_superlinear"`,
    /// `"e3_scale"`).
    pub experiment: String,
    /// Instance size (nodes for E1/E3-scale, disjointness side length for
    /// E2).
    pub n: usize,
    /// Wall-clock time of the workload, milliseconds.
    pub wall_ms: f64,
    /// Parallelism lanes the pool used (`rayon::current_num_threads`).
    pub threads: usize,
    /// Whether the pool had more lanes than the host has CPUs — such
    /// numbers measure scheduler thrash, not speedup, and are excluded
    /// from speedup summaries and regression comparisons.
    pub oversubscribed: bool,
    /// Engine shard count of the run (0 = not recorded / pre-v2 entry;
    /// the engine's auto mode resolves to one shard per pool lane).
    pub shards: usize,
    /// Process peak RSS (`VmHWM`) in KiB *after* the workload ran, 0 when
    /// not recorded. The high-water mark is monotone within a process, so
    /// only the largest workload of an `--emit` run (E3-scale, which runs
    /// last) records it — earlier entries would just echo their own noise.
    pub peak_rss_kb: u64,
    /// 99th-percentile single-query latency in milliseconds, 0.0 when not
    /// recorded (v3 column; only the serve-QPS workload measures it). For
    /// those entries `wall_ms` is the whole batch, so throughput is
    /// `n / (wall_ms / 1000)` queries/sec *at* this tail latency — the
    /// regression gate compares both.
    pub p99_ms: f64,
    /// Whether a production-config flight recorder rode the run (v4
    /// column; the `e1_flight` entry). Paired with the bare
    /// `e1_even_cycle` entry at the same `(n, threads)`, this is the
    /// recorder-overhead A/B the [`recorder_overhead_gate`] checks.
    pub recorder: bool,
}

impl PerfEntry {
    /// The entry as one JSON object. The `oversubscribed` flag and the v2
    /// columns (`shards`, `peak_rss_kb`) are emitted only when set,
    /// keeping the common case identical to older reports.
    pub fn to_json(&self) -> String {
        let flag = if self.oversubscribed {
            r#","oversubscribed":true"#
        } else {
            ""
        };
        let shards = if self.shards > 0 {
            format!(r#","shards":{}"#, self.shards)
        } else {
            String::new()
        };
        let rss = if self.peak_rss_kb > 0 {
            format!(r#","peak_rss_kb":{}"#, self.peak_rss_kb)
        } else {
            String::new()
        };
        let p99 = if self.p99_ms > 0.0 {
            format!(r#","p99_ms":{:.3}"#, self.p99_ms)
        } else {
            String::new()
        };
        let recorder = if self.recorder {
            r#","recorder":true"#
        } else {
            ""
        };
        format!(
            r#"{{"experiment":"{}","n":{},"wall_ms":{:.3},"threads":{}{flag}{shards}{rss}{p99}{recorder}}}"#,
            self.experiment, self.n, self.wall_ms, self.threads
        )
    }
}

/// Process peak RSS (`VmHWM` from `/proc/self/status`) in KiB, 0 when the
/// proc file is unavailable (non-Linux hosts).
pub fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|kb| kb.parse().ok())
        })
        .unwrap_or(0)
}

/// Default workload sizes (E1 node counts, E2 side lengths, E3-scale node
/// counts).
pub const FULL_SIZES: (&[usize], &[usize], &[usize]) =
    (&[128, 256, 512], &[16, 36, 64], &[100_000]);
/// Reduced sizes for the smoke-test variant of the regression gate.
pub const SMOKE_SIZES: (&[usize], &[usize], &[usize]) = (&[128], &[16], &[10_000]);
/// Serve-QPS batch sizes (queries per batch) for the full run.
pub const SERVE_FULL_SIZES: &[usize] = &[100];
/// Serve-QPS batch size for the smoke variant.
pub const SERVE_SMOKE_SIZES: &[usize] = &[20];

/// Runs the timed workloads at the current pool size. Sizes are chosen so
/// one pass stays under ~a minute in release mode while still being large
/// enough for the round loop (not process startup) to dominate.
pub fn run_workloads() -> Vec<PerfEntry> {
    run_sized_workloads(FULL_SIZES.0, FULL_SIZES.1, FULL_SIZES.2, SERVE_FULL_SIZES)
}

/// The smoke variant: smallest size of each experiment only.
pub fn run_smoke_workloads() -> Vec<PerfEntry> {
    run_sized_workloads(
        SMOKE_SIZES.0,
        SMOKE_SIZES.1,
        SMOKE_SIZES.2,
        SERVE_SMOKE_SIZES,
    )
}

/// Repetitions per timed workload. The *minimum* wall time across reps is
/// reported: a deterministic workload cannot run faster than its true cost,
/// but unrelated host load can easily make any one rep slower, so the min
/// is the noise-robust estimator (the same convention as criterion's
/// lower-bound reporting).
const TIMING_REPS: usize = 3;

/// Times `work` `reps` times and returns the minimum in ms.
fn min_wall_ms_over(reps: usize, mut work: impl FnMut()) -> f64 {
    (0..reps)
        .map(|_| {
            let start = Instant::now();
            work();
            start.elapsed().as_secs_f64() * 1e3
        })
        .fold(f64::INFINITY, f64::min)
}

/// Times `work` [`TIMING_REPS`] times and returns the minimum in ms.
fn min_wall_ms(work: impl FnMut()) -> f64 {
    min_wall_ms_over(TIMING_REPS, work)
}

/// One `congest-serve` request line of the QPS workload (all queries hit
/// one planted-`C_4` graph; kinds and fault injection alternate by index,
/// the same mix as the golden session but sized by the caller).
fn serve_request_line(idx: usize) -> String {
    let graph = r#"{"generator":"planted_c2k","n":96,"d":3,"k":2,"seed":7}"#;
    let seed = idx / 4;
    let scenario = match idx % 4 {
        0 => format!(r#"{{"kind":"even_cycle","k":2,"repetitions":2,"seed":{seed}}}"#),
        1 => format!(
            r#"{{"kind":"even_cycle","k":2,"repetitions":2,"seed":{seed},"faults":{{"kind":"independent_loss","p":0.25}}}}"#
        ),
        2 => format!(r#"{{"kind":"triangle","seed":{seed}}}"#),
        _ => format!(
            r#"{{"kind":"triangle","seed":{seed},"faults":{{"kind":"independent_loss","p":0.25}}}}"#
        ),
    };
    format!(
        r#"{{"schema":"congest.serve","version":1,"op":"query","id":"q{idx}","graph":{graph},"scenario":{scenario}}}"#
    )
}

/// Times the `congest-serve` batch path: `queries` detection queries over
/// one cached graph, executed as a single batch. `wall_ms` is the batch
/// (throughput = `queries / wall_ms` kqps); `p99_ms` is the tail of the
/// single-query latency distribution measured on the same warm service.
/// Caches are warmed first — this times query execution, not graph
/// generation (the cache's job, asserted elsewhere).
pub fn serve_qps_workload(queries: usize) -> PerfEntry {
    let threads = rayon::current_num_threads();
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let lines: Vec<String> = (0..queries).map(serve_request_line).collect();

    let mut svc = serve::Service::new(serve::ServiceConfig::default());
    // Warm pass: populates the graph/topology caches (and the allocator).
    for l in &lines {
        assert!(svc.handle_line(l).is_empty(), "query must enqueue");
    }
    assert_eq!(svc.flush().len(), queries + 1);

    // Tail latency: single-query batches, sequentially, on the warm service.
    let mut latencies: Vec<f64> = lines
        .iter()
        .map(|l| {
            let start = Instant::now();
            assert!(svc.handle_line(l).is_empty());
            assert_eq!(svc.flush().len(), 2);
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    latencies.sort_by(f64::total_cmp);
    let p99_idx = ((latencies.len() as f64 * 0.99).ceil() as usize).clamp(1, latencies.len()) - 1;
    let p99_ms = latencies[p99_idx];

    // Throughput: the whole batch through the pool, min over reps.
    let wall_ms = min_wall_ms(|| {
        for l in &lines {
            assert!(svc.handle_line(l).is_empty());
        }
        assert_eq!(svc.flush().len(), queries + 1);
    });

    PerfEntry {
        experiment: "serve_qps".into(),
        n: queries,
        wall_ms,
        threads,
        oversubscribed: threads > host_cpus,
        shards: 0,
        peak_rss_kb: 0,
        p99_ms,
        recorder: false,
    }
}

fn run_sized_workloads(
    e1_sizes: &[usize],
    e2_sizes: &[usize],
    e3_sizes: &[usize],
    serve_sizes: &[usize],
) -> Vec<PerfEntry> {
    let threads = rayon::current_num_threads();
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let oversubscribed = threads > host_cpus;
    let mut entries = Vec::new();
    for &n in e1_sizes {
        let wall_ms = min_wall_ms(|| {
            let rows = exp::e1_even_cycle(2, &[n], 1, 42);
            assert_eq!(rows.len(), 1);
        });
        entries.push(PerfEntry {
            experiment: "e1_even_cycle".into(),
            n,
            wall_ms,
            threads,
            oversubscribed,
            shards: 0,
            peak_rss_kb: 0,
            p99_ms: 0.0,
            recorder: false,
        });
    }
    // Engine-tuning A/B at the largest E1 size: the pre-fusion three-pass
    // send loop and the fused loop without early termination. Together
    // with the production `e1_even_cycle` entry they decompose the speedup
    // into its fusion and ET parts; the referee suites pin all three
    // tunings to byte-identical decisions.
    if let Some(&n) = e1_sizes.last() {
        for (tag, fused, et) in [("e1_prefusion", false, false), ("e1_noearly", true, false)] {
            let wall_ms = min_wall_ms(|| {
                let rows = exp::e1_even_cycle_tuned(2, &[n], 1, 42, fused, et);
                assert_eq!(rows.len(), 1);
            });
            entries.push(PerfEntry {
                experiment: tag.into(),
                n,
                wall_ms,
                threads,
                oversubscribed,
                shards: 0,
                peak_rss_kb: 0,
                p99_ms: 0.0,
                recorder: false,
            });
        }
        // Flight-recorder A/B at the same size: the production workload
        // with an always-on-config recorder riding every phase run. The
        // bare `e1_even_cycle` entry above is the other arm;
        // `recorder_overhead_gate` holds their gap to a few percent.
        let wall_ms = min_wall_ms(|| {
            let rec = Arc::new(FlightRecorder::new(FlightConfig::default()));
            let obs = detection::EvenCycleObserver::collecting(rec);
            let rows = exp::e1_even_cycle_instrumented(2, &[n], 1, 42, true, true, Some(&obs));
            assert_eq!(rows.len(), 1);
        });
        entries.push(PerfEntry {
            experiment: "e1_flight".into(),
            n,
            wall_ms,
            threads,
            oversubscribed,
            shards: 0,
            peak_rss_kb: 0,
            p99_ms: 0.0,
            recorder: true,
        });
    }
    for &nc in e2_sizes {
        let wall_ms = min_wall_ms(|| {
            let rows = exp::e2_superlinear(2, &[nc], 7);
            assert_eq!(rows.len(), 1);
        });
        entries.push(PerfEntry {
            experiment: "e2_superlinear".into(),
            n: nc,
            wall_ms,
            threads,
            oversubscribed,
            shards: 0,
            peak_rss_kb: 0,
            p99_ms: 0.0,
            recorder: false,
        });
    }
    for &q in serve_sizes {
        entries.push(serve_qps_workload(q));
    }
    // E3-scale runs last (largest workload) so its VmHWM reading is the
    // run's true high-water mark, not an echo of a later allocation. The
    // graph is built once outside the timed region — the column times the
    // sharded round loop, not the generator.
    for &n in e3_sizes {
        let g = exp::scale_graph(n, 42);
        // One timing rep: the workload runs for tens of seconds at the
        // full size, so startup noise is in the per-mille range and a
        // 3-rep minimum would triple the bench for nothing.
        let wall_ms = min_wall_ms_over(1, || {
            let row = exp::e3_scale_on(&g, 0, 42);
            assert_eq!(row.n, n);
        });
        entries.push(PerfEntry {
            experiment: "e3_scale".into(),
            n,
            wall_ms,
            threads,
            oversubscribed,
            // Auto mode resolves to one shard per pool lane.
            shards: threads.min(n.max(1)),
            peak_rss_kb: peak_rss_kb(),
            p99_ms: 0.0,
            recorder: false,
        });
    }
    entries
}

/// Budgeted E3-scale: walk the scale experiment up by doubling `n` from
/// `start_n`, stopping before the run that would blow a `budget_secs`
/// wall-clock budget (projected as ~2.4× the last run — the workload is
/// slightly superlinear in `n`) or past `cap_n`. Graph construction counts
/// against the budget; each entry's `wall_ms` is still the round loop
/// alone, comparable with the full `e3_scale` entries. This is how CI
/// checks the `n = 10^6` trajectory without hard-coding a ten-minute run:
/// the sweep reaches whatever size the budget affords and reports it.
pub fn e3_budget_entries(budget_secs: f64, start_n: usize, cap_n: usize) -> Vec<PerfEntry> {
    let threads = rayon::current_num_threads();
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut entries = Vec::new();
    let mut n = start_n;
    let budget = Instant::now();
    // Worst per-node cost seen so far, for projecting the next (doubled)
    // size. Early termination makes wall time vary a lot between sizes —
    // one size may quiesce almost immediately while the next churns — so
    // projecting from the *last* run alone badly overshoots the budget;
    // the running worst is the conservative estimator.
    let mut worst_ms_per_node = 0.0f64;
    loop {
        let g = exp::scale_graph(n, 42);
        let t = Instant::now();
        let row = exp::e3_scale_on(&g, 0, 42);
        assert_eq!(row.n, n);
        let wall_ms = t.elapsed().as_secs_f64() * 1e3;
        entries.push(PerfEntry {
            experiment: "e3_budget".into(),
            n,
            wall_ms,
            threads,
            oversubscribed: threads > host_cpus,
            shards: threads.min(n.max(1)),
            peak_rss_kb: peak_rss_kb(),
            p99_ms: 0.0,
            recorder: false,
        });
        worst_ms_per_node = worst_ms_per_node.max(wall_ms / n as f64);
        n *= 2;
        let spent = budget.elapsed().as_secs_f64();
        // The per-node rate itself roughly doubles per doubling of n
        // (the round schedule grows with n too), so project the next size
        // at ~2.4× the worst rate seen so far.
        let projected = 2.4 * worst_ms_per_node * n as f64 / 1e3;
        if n > cap_n || spent + projected > budget_secs {
            break;
        }
    }
    entries
}

/// The canonical planted-`C_4` instance and detector config shared by the
/// fault-free report, the `congest-trace --canonical` gates, and the
/// referee tests.
fn canonical_fault_free_scenario() -> (graphlib::Graph, detection::EvenCycleConfig) {
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let base = graphlib::generators::gnp(48, 0.05, &mut rng);
    let (g, _) = graphlib::generators::plant_cycle(&base, 4, &mut rng);
    let cfg = detection::EvenCycleConfig::new(2).repetitions(4).seed(17);
    (g, cfg)
}

/// The canonical fault-free observability scenario: the Theorem 1.1
/// detector on a seeded planted-`C_4` instance, run with the structured
/// collector installed. Returns the run report — critical-path summary
/// embedded (run-report schema v2) — together with the full recorded
/// event stream. Deterministic for any thread count, so both the report
/// JSON and the trace are byte-stable (goldens live in `tests/golden/`).
pub fn canonical_fault_free_traced() -> (RunReport, Vec<SimEvent>) {
    let (g, cfg) = canonical_fault_free_scenario();
    let log = Arc::new(EventLog::new());
    let obs = detection::EvenCycleObserver::collecting(Arc::clone(&log));
    let rep = detection::detect_even_cycle_observed(&g, cfg, &obs).expect("detector run failed");
    let events = log.take();
    let cp = congest::obsv::critical_path(&events);
    let report = rep
        .run_report("even_cycle_fault_free")
        .with_critical_path(cp);
    (report, events)
}

/// The canonical fault-free run report (see [`canonical_fault_free_traced`]).
pub fn canonical_fault_free_report() -> RunReport {
    canonical_fault_free_traced().0
}

/// The canonical flight-recorder scenario: the fault-free planted-`C_4`
/// detector run with a small-capacity [`FlightRecorder`] installed (4-round
/// ring, 64 events per round, 32-slot reservoir, top-4 sketches) and the
/// dump rendered. Small caps on purpose — the scenario exercises both ring
/// eviction and reservoir replacement, and the golden stays reviewable.
/// Byte-identical at any shards × threads (`tests/golden/flight_record.jsonl`).
pub fn canonical_flight_record() -> String {
    let (g, cfg) = canonical_fault_free_scenario();
    let rec = Arc::new(FlightRecorder::new(FlightConfig {
        ring_rounds: 4,
        ring_events_per_round: 64,
        sample_capacity: 32,
        top_k: 4,
        ..FlightConfig::default()
    }));
    let obs = detection::EvenCycleObserver::collecting(Arc::clone(&rec));
    detection::detect_even_cycle_observed(&g, cfg, &obs).expect("detector run failed");
    rec.dump()
}

/// The EXPERIMENTS.md walkthrough scenario: the E3-scale instance (the
/// streaming degree-4 planted-`C_4` graph at `n`) run through the
/// Theorem 1.1 detector under 20 % independent message loss, with a
/// default-capacity [`FlightRecorder`] riding along, rendered as a dump.
/// The black box of a *faulty* census-size run: the ring retains the last
/// rounds before the run ended, the sketches name the hottest edges and
/// senders, and the totals carry the loss tally. Deterministic for any
/// thread count (`congest-trace dump --flight-faulty [n]` is the CLI
/// entry; n = 10^5 is the documented walkthrough size).
pub fn faulty_flight_record(n: usize) -> String {
    let g = exp::scale_graph(n, 42);
    let cfg = detection::EvenCycleConfig::new(2).repetitions(1).seed(42);
    let rec = Arc::new(FlightRecorder::new(FlightConfig::default()));
    let obs = detection::EvenCycleObserver::collecting(Arc::clone(&rec));
    detection::detect_even_cycle_faulty_observed(
        &g,
        cfg,
        &FaultSpec::IndependentLoss(0.2),
        None,
        &obs,
    )
    .expect("faulty detector run failed");
    rec.dump()
}

/// The canonical faulty observability scenario: the same detector behind
/// the stop-and-wait ARQ with 30 % independent message loss. The report
/// carries the transport's retransmission tallies next to the physical
/// traffic numbers. Deterministic for any thread count.
pub fn canonical_arq_loss_report() -> RunReport {
    let g = graphlib::generators::cycle(12);
    let cfg = detection::EvenCycleConfig::new(2).repetitions(2).seed(7);
    let rep = detection::detect_even_cycle_faulty(
        &g,
        cfg,
        &FaultSpec::IndependentLoss(0.3),
        Some(ReliableConfig::default()),
    )
    .expect("faulty detector run failed");
    rep.run_report("even_cycle_arq_loss30")
}

/// The canonical bursty-loss planted-`C_4` instance: a sparse G(n,p) with
/// a planted 4-cycle under Gilbert–Elliott loss that is lossless in the
/// good state and drops *everything* in the bad state (stationary bad
/// probability 30 %). The scenario the sliding-window-vs-stop-and-wait
/// round-count comparison is pinned on.
fn canonical_bursty_scenario() -> (graphlib::Graph, detection::EvenCycleConfig, FaultSpec) {
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let base = graphlib::generators::gnp(16, 0.1, &mut rng);
    let (g, _) = graphlib::generators::plant_cycle(&base, 4, &mut rng);
    let cfg = detection::EvenCycleConfig::new(2).repetitions(4).seed(13);
    (g, cfg, FaultSpec::GilbertElliott(0.3, 0.7, 0.0, 1.0))
}

/// The canonical bursty-loss scenario behind the transport at ARQ window
/// `window` (1 = stop-and-wait, the [`ReliableConfig::default`] window =
/// the pipelined golden). Deterministic for any thread count.
pub fn canonical_bursty_report(window: usize) -> RunReport {
    let (g, cfg, faults) = canonical_bursty_scenario();
    let rcfg = ReliableConfig {
        window,
        ..ReliableConfig::default()
    };
    let rep = detection::detect_even_cycle_faulty(&g, cfg, &faults, Some(rcfg))
        .expect("bursty detector run failed");
    let label = if window == 1 {
        "even_cycle_bursty_stopwait".to_string()
    } else {
        format!("even_cycle_bursty_w{window}")
    };
    rep.run_report(&label)
}

/// All canonical run reports, in a fixed order — the `perf` binary's
/// `--run-reports` export and the golden-file tests share this list. The
/// third entry is the bursty-loss scenario at the default (windowed) ARQ;
/// its stop-and-wait counterpart is regenerated on the fly by the
/// round-count-ratio test rather than committed.
pub fn canonical_run_reports() -> Vec<RunReport> {
    vec![
        canonical_fault_free_report(),
        canonical_arq_loss_report(),
        canonical_bursty_report(ReliableConfig::default().window),
    ]
}

/// Runs both canonical scenarios with the engine self-profiler installed
/// and returns `(folded_stacks, summary_table)`. The fault-free run times
/// the engine's accounting/staging/delivery/compute stages; the ARQ run
/// additionally exercises the transport's retransmit-scan span. Wall-clock
/// numbers, so the output is *not* deterministic — it never feeds goldens.
pub fn profile_canonical() -> (String, String) {
    let profiler = Arc::new(Profiler::new());
    let obs = detection::EvenCycleObserver::default().with_profiler(Arc::clone(&profiler));
    let (g, cfg) = canonical_fault_free_scenario();
    detection::detect_even_cycle_observed(&g, cfg, &obs).expect("detector run failed");
    let g2 = graphlib::generators::cycle(12);
    let cfg2 = detection::EvenCycleConfig::new(2).repetitions(2).seed(7);
    detection::detect_even_cycle_faulty_observed(
        &g2,
        cfg2,
        &FaultSpec::IndependentLoss(0.3),
        Some(ReliableConfig::default()),
        &obs,
    )
    .expect("faulty detector run failed");
    (profiler.folded_stacks("congest"), profiler.summary_table())
}

/// `YYYY-MM-DD` for a Unix timestamp (civil-from-days, proleptic
/// Gregorian) — enough calendar for a file name, no date crate needed.
pub fn date_stamp(secs_since_epoch: u64) -> String {
    let z = (secs_since_epoch / 86_400) as i64 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = yoe + era * 400 + i64::from(m <= 2);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Extracts the raw text of a scalar JSON field from a flat object
/// fragment. Hand-rolled on purpose (no serde in-tree): good enough for
/// the perf documents this module itself writes.
fn json_field<'a>(obj: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = obj.find(&pat)? + pat.len();
    let rest = obj[start..].trim_start();
    let end = rest.find([',', '}', '\n']).unwrap_or(rest.len());
    Some(rest[..end].trim().trim_matches('"'))
}

/// Parses the `host_cpus` field of a perf-baseline document.
pub fn parse_host_cpus(doc: &str) -> Option<usize> {
    json_field(doc, "host_cpus")?.parse().ok()
}

/// Parses every entry object of a perf-baseline document (or a bare
/// stream of entry lines, as `--emit` prints). Tolerates older documents
/// without `schema`/`version`/`oversubscribed` fields; entries it cannot
/// parse are skipped.
pub fn parse_entries(doc: &str) -> Vec<PerfEntry> {
    doc.lines()
        .filter(|l| l.contains(r#""experiment""#))
        .filter_map(|l| {
            Some(PerfEntry {
                experiment: json_field(l, "experiment")?.to_string(),
                n: json_field(l, "n")?.parse().ok()?,
                wall_ms: json_field(l, "wall_ms")?.parse().ok()?,
                threads: json_field(l, "threads")?.parse().ok()?,
                oversubscribed: json_field(l, "oversubscribed") == Some("true"),
                shards: json_field(l, "shards")
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(0),
                peak_rss_kb: json_field(l, "peak_rss_kb")
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(0),
                p99_ms: json_field(l, "p99_ms")
                    .and_then(|s| s.parse().ok())
                    .unwrap_or(0.0),
                recorder: json_field(l, "recorder") == Some("true"),
            })
        })
        .collect()
}

/// Result of a perf-regression comparison.
#[derive(Debug, Default)]
pub struct GateOutcome {
    /// Entries compared against a baseline.
    pub checked: usize,
    /// Human-readable notes for entries that could not be compared.
    pub skipped: Vec<String>,
    /// Regressions above tolerance (empty = gate passes).
    pub failures: Vec<String>,
}

impl GateOutcome {
    /// Whether the gate passes.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Compares `current` timings against a committed baseline document.
///
/// An entry fails when its wall clock exceeds the matching baseline entry
/// (same experiment, size, and thread count) by more than `tolerance_pct`
/// percent. Comparisons are skipped — never failed — when the baseline was
/// recorded on a host with a different CPU count, or when either side is
/// oversubscribed (threads > host CPUs measure scheduler thrash, not the
/// engine). Baselines predating the `oversubscribed` flag are classified
/// from their own recorded `host_cpus`.
pub fn regression_gate(
    baseline_doc: &str,
    current: &[PerfEntry],
    host_cpus: usize,
    tolerance_pct: f64,
) -> GateOutcome {
    let mut out = GateOutcome::default();
    let baseline_host = parse_host_cpus(baseline_doc);
    if baseline_host != Some(host_cpus) {
        out.skipped.push(format!(
            "baseline host_cpus {baseline_host:?} != current {host_cpus}: nothing comparable"
        ));
        return out;
    }
    let baseline = parse_entries(baseline_doc);
    for cur in current {
        let tag = format!("{} n={} threads={}", cur.experiment, cur.n, cur.threads);
        if cur.oversubscribed || cur.threads > host_cpus {
            out.skipped.push(format!("{tag}: oversubscribed run"));
            continue;
        }
        let base = baseline.iter().find(|b| {
            b.experiment == cur.experiment
                && b.n == cur.n
                && b.threads == cur.threads
                && !b.oversubscribed
                && b.threads <= host_cpus
        });
        match base {
            None => out
                .skipped
                .push(format!("{tag}: no comparable baseline entry")),
            Some(b) => {
                out.checked += 1;
                let limit = b.wall_ms * (1.0 + tolerance_pct / 100.0);
                if cur.wall_ms > limit {
                    out.failures.push(format!(
                        "{tag}: {:.3} ms vs baseline {:.3} ms (limit {limit:.3} ms at +{tolerance_pct}%)",
                        cur.wall_ms, b.wall_ms
                    ));
                }
                // Serve-QPS entries additionally gate the tail: the
                // throughput number only means something *at* its p99, so
                // both must hold (skipped when either side predates v3).
                if cur.p99_ms > 0.0 && b.p99_ms > 0.0 {
                    let p99_limit = b.p99_ms * (1.0 + tolerance_pct / 100.0);
                    if cur.p99_ms > p99_limit {
                        out.failures.push(format!(
                            "{tag}: p99 {:.3} ms vs baseline {:.3} ms (limit {p99_limit:.3} ms at +{tolerance_pct}%)",
                            cur.p99_ms, b.p99_ms
                        ));
                    }
                }
            }
        }
    }
    out
}

/// Wall-clock deltas below this are timer noise, not recorder cost: the
/// min-over-reps estimator still jitters by a few hundred µs on a loaded
/// host, so percentage gates only fire once the absolute gap clears it.
pub const RECORDER_NOISE_FLOOR_MS: f64 = 0.5;

/// The flight-recorder overhead check: for every `(n, threads)` with both
/// an `e1_flight` and a bare `e1_even_cycle` entry *in the same report*,
/// the recorder arm must cost at most `max_pct` percent over the bare arm
/// (absolute gaps under [`RECORDER_NOISE_FLOOR_MS`] always pass). The two
/// arms come from the same process minutes apart, so no baseline document
/// or host matching is involved — the A/B is self-contained.
pub fn recorder_overhead_gate(entries: &[PerfEntry], max_pct: f64) -> GateOutcome {
    let mut out = GateOutcome::default();
    for flight in entries.iter().filter(|e| e.experiment == "e1_flight") {
        let tag = format!("e1_flight n={} threads={}", flight.n, flight.threads);
        let Some(bare) = entries.iter().find(|b| {
            b.experiment == "e1_even_cycle" && b.n == flight.n && b.threads == flight.threads
        }) else {
            out.skipped.push(format!("{tag}: no bare e1 arm to compare"));
            continue;
        };
        out.checked += 1;
        let delta = flight.wall_ms - bare.wall_ms;
        let limit = bare.wall_ms * max_pct / 100.0;
        if delta > RECORDER_NOISE_FLOOR_MS && delta > limit {
            out.failures.push(format!(
                "{tag}: recorder overhead {delta:.3} ms over {:.3} ms bare (+{:.1}%, limit +{max_pct}%)",
                bare.wall_ms,
                100.0 * delta / bare.wall_ms
            ));
        }
    }
    out
}

/// Per-workload speedup lines relative to the 1-thread entries.
/// Oversubscribed entries are reported as skipped rather than folded into
/// a meaningless "speedup".
pub fn speedup_summary(entries: &[PerfEntry], host_cpus: usize) -> Vec<String> {
    let mut lines = Vec::new();
    for base in entries.iter().filter(|e| e.threads == 1) {
        for multi in entries
            .iter()
            .filter(|e| e.experiment == base.experiment && e.n == base.n && e.threads > 1)
        {
            let tag = format!(
                "{} n={} @{} threads",
                multi.experiment, multi.n, multi.threads
            );
            if multi.oversubscribed || multi.threads > host_cpus {
                lines.push(format!("{tag}: skipped (oversubscribed)"));
            } else {
                lines.push(format!(
                    "{tag}: {:.2}x over 1 thread ({:.3} ms -> {:.3} ms)",
                    base.wall_ms / multi.wall_ms,
                    base.wall_ms,
                    multi.wall_ms
                ));
            }
        }
    }
    lines
}

/// Renders the full report document from pre-rendered entry objects (one
/// JSON object string each, as produced by [`PerfEntry::to_json`]) gathered
/// across thread counts.
pub fn render_report(date: &str, host_cpus: usize, entry_jsons: &[String]) -> String {
    let body: Vec<String> = entry_jsons.iter().map(|e| format!("    {e}")).collect();
    format!(
        "{{\n  \"schema\": \"{PERF_REPORT_SCHEMA}\",\n  \"version\": {PERF_REPORT_VERSION},\n  \"date\": \"{date}\",\n  \"host_cpus\": {host_cpus},\n  \"entries\": [\n{}\n  ]\n}}\n",
        body.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date_stamp_is_civil() {
        assert_eq!(date_stamp(0), "1970-01-01");
        assert_eq!(date_stamp(86_400), "1970-01-02");
        // 2026-08-06 00:00:00 UTC.
        assert_eq!(date_stamp(1_785_974_400), "2026-08-06");
        // Leap day.
        assert_eq!(date_stamp(1_709_164_800), "2024-02-29");
    }

    fn entry(experiment: &str, n: usize, wall_ms: f64, threads: usize) -> PerfEntry {
        PerfEntry {
            experiment: experiment.into(),
            n,
            wall_ms,
            threads,
            oversubscribed: false,
            shards: 0,
            peak_rss_kb: 0,
            p99_ms: 0.0,
            recorder: false,
        }
    }

    #[test]
    fn report_is_valid_json_shape() {
        let entries = [
            entry("e1_even_cycle", 128, 12.5, 1),
            PerfEntry {
                oversubscribed: true,
                ..entry("e2_superlinear", 16, 3.25, 4)
            },
        ];
        let jsons: Vec<String> = entries.iter().map(PerfEntry::to_json).collect();
        let doc = render_report("2026-08-06", 4, &jsons);
        assert!(
            doc.contains(r#""experiment":"e1_even_cycle","n":128,"wall_ms":12.500,"threads":1"#)
        );
        assert!(doc.contains(r#""threads":4,"oversubscribed":true"#));
        assert!(doc.contains(r#""host_cpus": 4"#));
        assert!(doc.contains(r#""schema": "congest.perf_report""#));
        assert!(doc.contains(r#""version": 4"#));
        // Balanced braces/brackets, trailing newline — cheap well-formedness.
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
        assert!(doc.ends_with('\n'));
    }

    #[test]
    fn entries_roundtrip_through_render_and_parse() {
        let entries = vec![
            entry("e1_even_cycle", 256, 75.23, 1),
            PerfEntry {
                oversubscribed: true,
                ..entry("e1_even_cycle", 256, 300.0, 4)
            },
            PerfEntry {
                shards: 4,
                peak_rss_kb: 184_320,
                ..entry("e3_scale", 100_000, 4_200.5, 4)
            },
        ];
        let jsons: Vec<String> = entries.iter().map(PerfEntry::to_json).collect();
        let doc = render_report("2026-08-06", 1, &jsons);
        assert_eq!(parse_entries(&doc), entries);
        assert_eq!(parse_host_cpus(&doc), Some(1));
    }

    #[test]
    fn parser_tolerates_old_schema_less_documents() {
        // PR 2-era documents: no schema/version, no oversubscribed flags.
        let doc = concat!(
            "{\n  \"date\": \"2026-08-06\",\n  \"host_cpus\": 1,\n  \"entries\": [\n",
            "    {\"experiment\":\"e1_even_cycle\",\"n\":512,\"wall_ms\":181.187,\"threads\":1},\n",
            "    {\"experiment\":\"e1_even_cycle\",\"n\":512,\"wall_ms\":702.577,\"threads\":4}\n",
            "  ]\n}\n"
        );
        let parsed = parse_entries(doc);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].wall_ms, 181.187);
        assert!(!parsed[0].oversubscribed && !parsed[1].oversubscribed);
        assert_eq!(parse_host_cpus(doc), Some(1));
    }

    #[test]
    fn v2_columns_are_emitted_only_when_set() {
        let plain = entry("e1_even_cycle", 128, 1.0, 1).to_json();
        assert!(!plain.contains("shards") && !plain.contains("peak_rss_kb"));
        let scale = PerfEntry {
            shards: 2,
            peak_rss_kb: 1024,
            ..entry("e3_scale", 10_000, 9.0, 2)
        }
        .to_json();
        assert!(scale.contains(r#""shards":2"#));
        assert!(scale.contains(r#""peak_rss_kb":1024"#));
    }

    #[test]
    fn p99_column_round_trips_and_gates() {
        let serve = PerfEntry {
            p99_ms: 12.345,
            ..entry("serve_qps", 100, 400.0, 1)
        };
        let json = serve.to_json();
        assert!(json.contains(r#""p99_ms":12.345"#));
        let plain = entry("e1_even_cycle", 128, 1.0, 1).to_json();
        assert!(!plain.contains("p99_ms"), "absent when not recorded");
        let doc = render_report("2026-08-09", 1, &[json]);
        assert_eq!(parse_entries(&doc), vec![serve.clone()]);
        // Same wall clock but a blown tail must fail the gate.
        let slow_tail = PerfEntry {
            p99_ms: 20.0,
            ..serve.clone()
        };
        let gate = regression_gate(&doc, &[slow_tail], 1, 20.0);
        assert!(!gate.passed());
        assert!(gate.failures[0].contains("p99"));
        let ok = regression_gate(&doc, &[serve], 1, 20.0);
        assert!(ok.passed());
    }

    #[test]
    fn recorder_column_round_trips_and_is_absent_when_off() {
        let flight = PerfEntry {
            recorder: true,
            ..entry("e1_flight", 512, 105.0, 1)
        };
        let json = flight.to_json();
        assert!(json.contains(r#""recorder":true"#));
        let bare = entry("e1_even_cycle", 512, 100.0, 1).to_json();
        assert!(!bare.contains("recorder"), "absent when off");
        let doc = render_report("2026-08-09", 1, &[json, bare]);
        let parsed = parse_entries(&doc);
        assert_eq!(parsed[0], flight);
        assert!(!parsed[1].recorder);
    }

    #[test]
    fn recorder_overhead_gate_pairs_arms_and_applies_the_floor() {
        let pair = |bare_ms: f64, flight_ms: f64| {
            vec![
                entry("e1_even_cycle", 512, bare_ms, 1),
                PerfEntry {
                    recorder: true,
                    ..entry("e1_flight", 512, flight_ms, 1)
                },
            ]
        };
        // 3% over: passes a 5% gate.
        let ok = recorder_overhead_gate(&pair(100.0, 103.0), 5.0);
        assert!(ok.passed());
        assert_eq!(ok.checked, 1);
        // 10% over: fails.
        let bad = recorder_overhead_gate(&pair(100.0, 110.0), 5.0);
        assert!(!bad.passed());
        assert!(bad.failures[0].contains("e1_flight n=512"));
        // Sub-floor absolute gap passes even at a huge percentage — 0.4 ms
        // over a 1 ms run is timer noise, not recorder cost.
        let tiny = recorder_overhead_gate(&pair(1.0, 1.4), 5.0);
        assert!(tiny.passed());
        // Unpaired flight entry (different thread count): skipped.
        let unpaired = vec![
            entry("e1_even_cycle", 512, 100.0, 4),
            PerfEntry {
                recorder: true,
                ..entry("e1_flight", 512, 200.0, 1)
            },
        ];
        let skip = recorder_overhead_gate(&unpaired, 5.0);
        assert!(skip.passed());
        assert_eq!(skip.checked, 0);
        assert!(skip.skipped[0].contains("no bare e1 arm"));
    }

    #[test]
    fn peak_rss_reader_reports_this_process() {
        // Any live Linux process has a nonzero high-water mark; elsewhere
        // the reader degrades to 0 instead of failing.
        let kb = peak_rss_kb();
        if std::path::Path::new("/proc/self/status").exists() {
            assert!(kb > 0, "VmHWM should be readable, got {kb}");
        }
    }

    #[test]
    fn gate_passes_within_tolerance_and_fails_above() {
        let baseline = render_report(
            "2026-08-06",
            1,
            &[entry("e1_even_cycle", 512, 100.0, 1).to_json()],
        );
        let ok = regression_gate(&baseline, &[entry("e1_even_cycle", 512, 115.0, 1)], 1, 20.0);
        assert!(ok.passed());
        assert_eq!(ok.checked, 1);
        let bad = regression_gate(&baseline, &[entry("e1_even_cycle", 512, 125.0, 1)], 1, 20.0);
        assert!(!bad.passed());
        assert!(bad.failures[0].contains("e1_even_cycle n=512"));
    }

    #[test]
    fn gate_skips_host_mismatch_and_oversubscription() {
        let baseline = render_report(
            "2026-08-06",
            1,
            &[
                entry("e1_even_cycle", 512, 100.0, 1).to_json(),
                // Unmarked 4-thread entry from a 1-CPU host (old format):
                // classified as incomparable from host_cpus, not the flag.
                entry("e1_even_cycle", 512, 700.0, 4).to_json(),
            ],
        );
        // Different host: everything skipped, gate passes vacuously.
        let other_host = regression_gate(
            &baseline,
            &[entry("e1_even_cycle", 512, 9_999.0, 1)],
            8,
            20.0,
        );
        assert!(other_host.passed());
        assert_eq!(other_host.checked, 0);
        // Same 1-CPU host: the current 4-thread run is oversubscribed and
        // must be skipped even though the baseline has a 4-thread entry.
        let cur = PerfEntry {
            oversubscribed: true,
            ..entry("e1_even_cycle", 512, 9_999.0, 4)
        };
        let over = regression_gate(&baseline, &[cur], 1, 20.0);
        assert!(over.passed());
        assert_eq!(over.checked, 0);
        assert!(over.skipped[0].contains("oversubscribed"));
    }

    #[test]
    fn speedups_skip_oversubscribed_entries() {
        let entries = vec![
            entry("e1_even_cycle", 512, 100.0, 1),
            entry("e1_even_cycle", 512, 50.0, 2),
            PerfEntry {
                oversubscribed: true,
                ..entry("e1_even_cycle", 512, 400.0, 4)
            },
        ];
        let lines = speedup_summary(&entries, 2);
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("2.00x"));
        assert!(lines[1].contains("skipped (oversubscribed)"));
    }
}
