//! Machine-readable perf baselines.
//!
//! The criterion benches time micro-kernels; this module times the two
//! *end-to-end* experiments the thread pool is supposed to speed up (E1
//! even-cycle detection, E2 superlinear-family simulation) and renders the
//! wall-clock numbers as a small JSON document, so the repo's perf
//! trajectory is recorded in-tree (`BENCH_<date>.json` at the workspace
//! root, one file per measurement day).
//!
//! The pool sizes itself once per process from `RAYON_NUM_THREADS`, so a
//! multi-thread-count report needs one subprocess per count — that
//! orchestration lives in the `perf` binary (`src/bin/perf.rs`) and
//! `scripts/bench.sh`; this module is the in-process part: run the
//! workloads at the *current* thread count and serialize entries.

use crate::experiments as exp;
use congest::{FaultSpec, ReliableConfig, RunReport};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Instant;
use subgraph_detection as detection;

/// Schema tag of the perf-baseline document ([`render_report`]).
pub const PERF_REPORT_SCHEMA: &str = "congest.perf_report";
/// Version of the perf-baseline document layout.
pub const PERF_REPORT_VERSION: u32 = 1;

/// One timed workload: `experiment` at size `n` took `wall_ms` on a pool of
/// `threads` lanes.
#[derive(Debug, Clone, PartialEq)]
pub struct PerfEntry {
    /// Experiment tag (`"e1_even_cycle"`, `"e2_superlinear"`).
    pub experiment: String,
    /// Instance size (nodes for E1, disjointness side length for E2).
    pub n: usize,
    /// Wall-clock time of the workload, milliseconds.
    pub wall_ms: f64,
    /// Parallelism lanes the pool used (`rayon::current_num_threads`).
    pub threads: usize,
}

impl PerfEntry {
    /// The entry as one JSON object.
    pub fn to_json(&self) -> String {
        format!(
            r#"{{"experiment":"{}","n":{},"wall_ms":{:.3},"threads":{}}}"#,
            self.experiment, self.n, self.wall_ms, self.threads
        )
    }
}

/// Runs the timed workloads at the current pool size. Sizes are chosen so
/// one pass stays under ~a minute in release mode while still being large
/// enough for the round loop (not process startup) to dominate.
pub fn run_workloads() -> Vec<PerfEntry> {
    let threads = rayon::current_num_threads();
    let mut entries = Vec::new();
    for n in [128usize, 256, 512] {
        let start = Instant::now();
        let rows = exp::e1_even_cycle(2, &[n], 1, 42);
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(rows.len(), 1);
        entries.push(PerfEntry {
            experiment: "e1_even_cycle".into(),
            n,
            wall_ms,
            threads,
        });
    }
    for nc in [16usize, 36, 64] {
        let start = Instant::now();
        let rows = exp::e2_superlinear(2, &[nc], 7);
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(rows.len(), 1);
        entries.push(PerfEntry {
            experiment: "e2_superlinear".into(),
            n: nc,
            wall_ms,
            threads,
        });
    }
    entries
}

/// The canonical fault-free observability scenario: the Theorem 1.1
/// detector on a seeded planted-`C_4` instance, exported as a
/// schema-versioned run report. Deterministic for any thread count, so
/// the rendered JSON is byte-stable (goldens live in `tests/golden/`).
pub fn canonical_fault_free_report() -> RunReport {
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let base = graphlib::generators::gnp(48, 0.05, &mut rng);
    let (g, _) = graphlib::generators::plant_cycle(&base, 4, &mut rng);
    let cfg = detection::EvenCycleConfig::new(2).repetitions(4).seed(17);
    let rep = detection::detect_even_cycle(&g, cfg).expect("detector run failed");
    rep.run_report("even_cycle_fault_free")
}

/// The canonical faulty observability scenario: the same detector behind
/// the stop-and-wait ARQ with 30 % independent message loss. The report
/// carries the transport's retransmission tallies next to the physical
/// traffic numbers. Deterministic for any thread count.
pub fn canonical_arq_loss_report() -> RunReport {
    let g = graphlib::generators::cycle(12);
    let cfg = detection::EvenCycleConfig::new(2).repetitions(2).seed(7);
    let rep = detection::detect_even_cycle_faulty(
        &g,
        cfg,
        &FaultSpec::IndependentLoss(0.3),
        Some(ReliableConfig::default()),
    )
    .expect("faulty detector run failed");
    rep.run_report("even_cycle_arq_loss30")
}

/// Both canonical run reports, in a fixed order — the `perf` binary's
/// `--run-reports` export and the golden-file tests share this list.
pub fn canonical_run_reports() -> Vec<RunReport> {
    vec![canonical_fault_free_report(), canonical_arq_loss_report()]
}

/// `YYYY-MM-DD` for a Unix timestamp (civil-from-days, proleptic
/// Gregorian) — enough calendar for a file name, no date crate needed.
pub fn date_stamp(secs_since_epoch: u64) -> String {
    let z = (secs_since_epoch / 86_400) as i64 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = yoe + era * 400 + i64::from(m <= 2);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Renders the full report document from pre-rendered entry objects (one
/// JSON object string each, as produced by [`PerfEntry::to_json`]) gathered
/// across thread counts.
pub fn render_report(date: &str, host_cpus: usize, entry_jsons: &[String]) -> String {
    let body: Vec<String> = entry_jsons.iter().map(|e| format!("    {e}")).collect();
    format!(
        "{{\n  \"schema\": \"{PERF_REPORT_SCHEMA}\",\n  \"version\": {PERF_REPORT_VERSION},\n  \"date\": \"{date}\",\n  \"host_cpus\": {host_cpus},\n  \"entries\": [\n{}\n  ]\n}}\n",
        body.join(",\n")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date_stamp_is_civil() {
        assert_eq!(date_stamp(0), "1970-01-01");
        assert_eq!(date_stamp(86_400), "1970-01-02");
        // 2026-08-06 00:00:00 UTC.
        assert_eq!(date_stamp(1_785_974_400), "2026-08-06");
        // Leap day.
        assert_eq!(date_stamp(1_709_164_800), "2024-02-29");
    }

    #[test]
    fn report_is_valid_json_shape() {
        let entries = [
            PerfEntry {
                experiment: "e1_even_cycle".into(),
                n: 128,
                wall_ms: 12.5,
                threads: 1,
            },
            PerfEntry {
                experiment: "e2_superlinear".into(),
                n: 16,
                wall_ms: 3.25,
                threads: 4,
            },
        ];
        let jsons: Vec<String> = entries.iter().map(PerfEntry::to_json).collect();
        let doc = render_report("2026-08-06", 4, &jsons);
        assert!(
            doc.contains(r#""experiment":"e1_even_cycle","n":128,"wall_ms":12.500,"threads":1"#)
        );
        assert!(doc.contains(r#""host_cpus": 4"#));
        assert!(doc.contains(r#""schema": "congest.perf_report""#));
        assert!(doc.contains(r#""version": 1"#));
        // Balanced braces/brackets, trailing newline — cheap well-formedness.
        assert_eq!(doc.matches('{').count(), doc.matches('}').count());
        assert_eq!(doc.matches('[').count(), doc.matches(']').count());
        assert!(doc.ends_with('\n'));
    }
}
