//! The paper's experiments, E1–E8. Every function is deterministic given
//! its seed; the `report` binary prints the same series EXPERIMENTS.md
//! records.

use graphlib::{generators, Graph};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use subgraph_detection as detection;

/// One row of the E1 sweep.
#[derive(Debug, Clone)]
pub struct E1Row {
    /// Number of nodes.
    pub n: usize,
    /// Rounds of one repetition of the Theorem 1.1 detector.
    pub detector_rounds: usize,
    /// The theoretical shape `n^{1-1/(k(k-1))}`.
    pub bound: f64,
    /// Rounds of the gather-at-leader baseline on the same graph.
    pub baseline_rounds: usize,
    /// Whether the planted cycle was detected in the measured repetitions.
    pub detected: bool,
}

/// E1 — Theorem 1.1: `C_2k` detection rounds vs `n`, against the linear
/// baseline. `sizes` are the `n` values; detection uses `reps` repetitions.
/// Runs the engine's production tuning (fused send pass + causal early
/// termination); the reported `detector_rounds` is the *schedule's*
/// per-repetition round count, so the series is tuning-independent.
pub fn e1_even_cycle(k: usize, sizes: &[usize], reps: usize, seed: u64) -> Vec<E1Row> {
    e1_even_cycle_tuned(k, sizes, reps, seed, true, true)
}

/// [`e1_even_cycle`] with explicit engine tuning: `fused` selects the
/// fused vs pre-fusion send pass, `early_termination` the causal
/// round-skip. The A/B lever behind the `e1_prefusion` / `e1_noearly`
/// baseline entries — decisions and bit totals are identical at any
/// setting (pinned by the fusion referee and the ET driver tests).
pub fn e1_even_cycle_tuned(
    k: usize,
    sizes: &[usize],
    reps: usize,
    seed: u64,
    fused: bool,
    early_termination: bool,
) -> Vec<E1Row> {
    e1_even_cycle_instrumented(k, sizes, reps, seed, fused, early_termination, None)
}

/// [`e1_even_cycle_tuned`] with an optional observer riding the detector
/// runs. This is the flight-recorder on/off A/B lever behind the perf
/// `e1_flight` entry: an observer carrying a [`congest::FlightRecorder`]
/// streams every event past the always-on telemetry path, while `None` is
/// the bare production run — same instances, same seeds, same decisions.
pub fn e1_even_cycle_instrumented(
    k: usize,
    sizes: &[usize],
    reps: usize,
    seed: u64,
    fused: bool,
    early_termination: bool,
    obs: Option<&detection::EvenCycleObserver>,
) -> Vec<E1Row> {
    sizes
        .iter()
        .map(|&n| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ n as u64);
            let base = generators::random_tree(n, &mut rng);
            let (g, _) = generators::plant_cycle(&base, 2 * k, &mut rng);
            let cfg = detection::EvenCycleConfig::new(k)
                .repetitions(reps)
                .seed(seed)
                .fused(fused)
                .early_termination(early_termination);
            let rep = match obs {
                Some(o) => detection::detect_even_cycle_observed(&g, cfg, o).expect("engine"),
                None => detection::detect_even_cycle(&g, cfg).expect("engine"),
            };
            let cyc = generators::cycle(2 * k);
            let baseline = detection::detect_gather(&g, &cyc).expect("engine");
            E1Row {
                n,
                detector_rounds: rep.rounds_per_repetition,
                bound: detection::even_cycle::theorem_bound(n, k),
                baseline_rounds: baseline.rounds,
                detected: rep.detected,
            }
        })
        .collect()
}

/// Least-squares slope of `log(rounds)` against `log(n)` — the measured
/// exponent of a sweep.
pub fn fitted_exponent(points: &[(usize, usize)]) -> f64 {
    let logs: Vec<(f64, f64)> = points
        .iter()
        .map(|&(n, r)| ((n as f64).ln(), (r.max(1) as f64).ln()))
        .collect();
    let n = logs.len() as f64;
    let sx: f64 = logs.iter().map(|p| p.0).sum();
    let sy: f64 = logs.iter().map(|p| p.1).sum();
    let sxx: f64 = logs.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = logs.iter().map(|p| p.0 * p.1).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

/// One row of the E2 sweep.
#[derive(Debug, Clone)]
pub struct E2Row {
    /// Disjointness side length (universe `[n]²`).
    pub n_copies: usize,
    /// Vertices of `G_{k,n}` (must be `Θ(n)`).
    pub graph_size: usize,
    /// Diameter (must be 3).
    pub diameter: usize,
    /// Measured directed cut size.
    pub cut: usize,
    /// Theoretical cut bound `Θ(k n^{1/k})`.
    pub cut_bound: usize,
    /// Bits the two-party simulation of the gather algorithm exchanged.
    pub sim_bits: u64,
    /// Rounds the gather algorithm took.
    pub rounds: usize,
    /// The implied lower bound on rounds for *any* algorithm,
    /// `Ω(n²) / (cut · B)`.
    pub implied_round_lb: f64,
    /// Lemma 3.1 verified on this instance (characterization vs input).
    pub lemma31_ok: bool,
}

/// E2 — Theorem 1.2: build `G_{k,n}`, check Property 1 and Lemma 3.1,
/// simulate a real detection algorithm two-party style, and report the
/// implied round bound.
pub fn e2_superlinear(k: usize, copies: &[usize], seed: u64) -> Vec<E2Row> {
    use lowerbounds::{FamilyLayout, HkGraph};
    copies
        .iter()
        .map(|&nc| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ nc as u64);
            let lay = FamilyLayout::new(k, nc);
            let inst =
                commlb::DisjointnessInstance::random_intersecting(nc, 1.0 / nc as f64, &mut rng);
            let g = lay.build(&inst.x_pairs(), &inst.y_pairs());
            let parts = lay.partition();
            let diameter = graphlib::diameter::diameter(&g).unwrap_or(usize::MAX);
            // Lemma 3.1 on this instance: characterization vs the input.
            let lemma31_ok =
                FamilyLayout::contains_hk(&inst.x_pairs(), &inst.y_pairs()) != inst.disjoint();
            // Two-party simulation of the gather detector for H_k.
            let hk = HkGraph::build(k).graph;
            let bw = congest::Bandwidth::Bits(2 * congest::bits_for_domain(g.n()) + 2);
            let pattern = hk.clone();
            let (outcome, sim) = commlb::simulate_two_party(
                &g,
                &parts,
                bw,
                16 * (g.n() + g.m() + 4),
                seed,
                move |_| detection::generic::GatherNode::new(pattern.clone()),
            )
            .expect("engine");
            let bbits = 2 * congest::bits_for_domain(g.n()) + 2;
            E2Row {
                n_copies: nc,
                graph_size: g.n(),
                diameter,
                cut: sim.cut_size(),
                cut_bound: lay.cut_bound(),
                sim_bits: sim.bits_exchanged,
                rounds: outcome.stats.rounds,
                implied_round_lb: lowerbounds::implied_round_lower_bound(nc, sim.cut_size(), bbits),
                lemma31_ok,
            }
        })
        .collect()
}

/// One row of E3.
#[derive(Debug, Clone)]
pub struct E3Row {
    /// Digest width `c`.
    pub bits: usize,
    /// Distinct transcripts observed over all `n³` triangles.
    pub transcript_classes: usize,
    /// Largest transcript class.
    pub largest_class: usize,
    /// The §4 floor `n³ / 2^{6(C+1)}` with `C = 2c`.
    pub class_floor: f64,
    /// Whether the adversary produced a fooling hexagon.
    pub fooled: bool,
}

/// E3 — Theorem 4.1: adversary sweep over digest widths.
pub fn e3_fooling(n: usize) -> Vec<E3Row> {
    let max_bits = congest::bits_for_domain(n);
    (1..=max_bits)
        .map(|c| {
            let rep = lowerbounds::run_adversary(&lowerbounds::IdHashAlgo { bits: c }, n);
            assert!(rep.all_triangles_rejected, "Claim 4.3");
            E3Row {
                bits: c,
                transcript_classes: rep.transcript_classes,
                largest_class: rep.largest_bucket,
                class_floor: (n * n * n) as f64 / 2f64.powi((6 * (2 * c + 1)) as i32),
                fooled: rep.witness.is_some(),
            }
        })
        .collect()
}

/// One row of E4.
#[derive(Debug, Clone)]
pub struct E4Row {
    /// Entries each node may forward (`usize::MAX` = full input).
    pub budget: usize,
    /// Message size in bits (per edge).
    pub message_bits: usize,
    /// Detection error over μ.
    pub error: f64,
    /// Empirical `I(X_bc; messages reaching v_a | X_ab = X_ac = 1)`.
    pub information: f64,
    /// The Lemma 5.4 leakage bound.
    pub leakage_bound: f64,
}

/// E4 — Theorem 5.1: error and information vs one-round message budget on
/// the μ distribution with pendant-set size `n`.
pub fn e4_one_round(n: usize, trials: usize, seed: u64) -> Vec<E4Row> {
    use detection::triangle::{message_bits, OneRoundStrategy};
    let namespace = ((3 * n + 3) as u64).pow(3);
    let mut budgets: Vec<usize> = vec![0, 1, 2, 4];
    let mut b = 8;
    while b < n + 2 {
        budgets.push(b);
        b *= 2;
    }
    budgets.push(n + 2);
    budgets
        .into_iter()
        .map(|budget| {
            let strategy = if budget >= n + 2 {
                OneRoundStrategy::Full
            } else {
                OneRoundStrategy::Prefix(budget)
            };
            let error = lowerbounds::detection_error(n, strategy, trials, seed);
            let information =
                lowerbounds::information_about_xbc(n, strategy, trials, seed ^ 0x5A5A);
            E4Row {
                budget: budget.min(n + 2),
                message_bits: message_bits(budget.min(n + 2), namespace),
                error,
                information,
                leakage_bound: lowerbounds::template::lemma_5_4_bound(n, budget.min(n + 2)),
            }
        })
        .collect()
}

/// One row of E5.
#[derive(Debug, Clone)]
pub struct E5Row {
    /// Clique size `s`.
    pub s: usize,
    /// Graph size.
    pub n: usize,
    /// Listed clique count (verified exact against centralized listing).
    pub cliques: usize,
    /// Rounds used by the congested-clique listing.
    pub rounds: usize,
    /// The shape bound `n^{1-2/s}`.
    pub bound: f64,
    /// Lemma 1.3 ratio `#K_s / m^{s/2}` (must stay `O(1)`).
    pub lemma_ratio: f64,
    /// The information-counting lower-bound certificate for this instance
    /// (`rounds` must exceed it).
    pub certificate: f64,
    /// Whether the distributed listing matched centralized enumeration.
    pub exact: bool,
}

/// E5 — Lemma 1.3 + `K_s` listing: sweep `n` for each `s`.
pub fn e5_listing(s: usize, sizes: &[usize], p: f64, seed: u64) -> Vec<E5Row> {
    sizes
        .iter()
        .map(|&n| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ (s * 1000 + n) as u64);
            let g = generators::gnp(n, p, &mut rng);
            let rep = lowerbounds::list_cliques_congested(&g, s, seed).expect("engine");
            let mut truth = graphlib::cliques::list_ksub(&g, s, usize::MAX);
            truth.sort();
            let (_, _, ratio) = lowerbounds::clique_count_ratio(&g, s);
            let certificate = lowerbounds::listing::listing_lower_bound_certificate(
                n,
                s,
                rep.cliques.len() as u64,
                congest::bits_for_domain(n.max(2)),
            );
            E5Row {
                s,
                n,
                cliques: rep.cliques.len(),
                rounds: rep.rounds,
                bound: rep.round_bound,
                lemma_ratio: ratio,
                certificate,
                exact: rep.cliques == truth,
            }
        })
        .collect()
}

/// One row of E6.
#[derive(Debug, Clone)]
pub struct E6Row {
    /// Cycle half-length `k`.
    pub k: usize,
    /// Repetitions measured.
    pub reps: usize,
    /// Empirical per-repetition success probability of the Theorem 1.1
    /// detector on a graph that is exactly one `C_2k`.
    pub empirical_success: f64,
    /// The paper's per-repetition guarantee `(2k)^{-2k}`.
    pub guarantee: f64,
}

/// E6 — color-coding amplification: per-repetition success probability vs
/// the `(2k)^{-2k}` guarantee.
pub fn e6_color_coding(k: usize, reps: usize, seed: u64) -> E6Row {
    let g = generators::cycle(2 * k);
    let mut successes = 0usize;
    for r in 0..reps {
        let cfg = detection::EvenCycleConfig::new(k)
            .repetitions(1)
            .seed(seed ^ r as u64)
            .edge_bound(4 * k);
        let rep = detection::detect_even_cycle(&g, cfg).expect("engine");
        if rep.detected {
            successes += 1;
        }
    }
    E6Row {
        k,
        reps,
        empirical_success: successes as f64 / reps as f64,
        guarantee: (2.0 * k as f64).powi(-2 * k as i32),
    }
}

/// One row of E7.
#[derive(Debug, Clone)]
pub struct E7Row {
    /// Graph size.
    pub n: usize,
    /// Edges of the dense `C_4`-free incidence graph.
    pub m: usize,
    /// The algorithm's bound `M(n, 2)`.
    pub edge_bound: usize,
    /// Nodes of degree `>= n^δ` in the incidence graph.
    pub high_degree_nodes: usize,
    /// The Phase-I pipelining cap `⌈M / n^δ⌉`.
    pub high_degree_cap: usize,
}

/// E7 — the Turán prerequisite of §6: dense even-cycle-free graphs stay
/// under `M(n, k)`, and the number of high-degree nodes under `M/n^δ`.
pub fn e7_turan(primes: &[usize]) -> Vec<E7Row> {
    primes
        .iter()
        .map(|&q| {
            let g = graphlib::turan::c4_free_incidence_graph(q);
            let n = g.n();
            let m_bound = graphlib::turan::even_cycle_edge_bound(n, 2);
            let sched = detection::Schedule::derive(n, 2, None);
            let thr = sched.degree_threshold;
            let high = (0..n).filter(|&v| g.degree(v) >= thr).count();
            E7Row {
                n,
                m: g.m(),
                edge_bound: m_bound,
                high_degree_nodes: high,
                high_degree_cap: m_bound.div_ceil(thr),
            }
        })
        .collect()
}

/// E7b — the Phase-I pipelining cap on hub-heavy graphs: for `k = 3`
/// (`δ = 1/2`) a preferential-attachment graph has genuine high-degree
/// nodes, and their count must stay under `⌈M/n^δ⌉` whenever
/// `|E| <= M(n, 3)` (Lemma 6.1's premise).
pub fn e7b_high_degree(sizes: &[usize], seed: u64) -> Vec<E7Row> {
    sizes
        .iter()
        .map(|&n| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ n as u64);
            let g = generators::preferential_attachment(n, 3, &mut rng);
            let m_bound = graphlib::turan::even_cycle_edge_bound(n, 3);
            let sched = detection::Schedule::derive(n, 3, None);
            let thr = sched.degree_threshold;
            let high = (0..n).filter(|&v| g.degree(v) >= thr).count();
            E7Row {
                n,
                m: g.m(),
                edge_bound: m_bound,
                high_degree_nodes: high,
                high_degree_cap: m_bound.div_ceil(thr),
            }
        })
        .collect()
}

/// One row of E8.
#[derive(Debug, Clone)]
pub struct E8Row {
    /// Graph size.
    pub n: usize,
    /// Rounds per repetition of the color-coded tree detector.
    pub tree_rounds: usize,
    /// Rounds of the LOCAL ball collector for the same pattern.
    pub local_rounds: usize,
    /// Whether detection agreed with ground truth.
    pub correct: bool,
}

/// E8 — constant-round tree detection across `n` (pattern: the 4-path).
pub fn e8_tree(sizes: &[usize], reps: usize, seed: u64) -> Vec<E8Row> {
    let pat_graph = generators::path(4);
    let pattern = detection::TreePattern::path(4);
    sizes
        .iter()
        .map(|&n| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ n as u64);
            let g = generators::gnm(n, 2 * n, &mut rng);
            let truth = graphlib::iso::contains_subgraph(&pat_graph, &g);
            let rep = detection::detect_tree(&g, &pattern, reps, seed).expect("engine");
            let local = detection::detect_local(&g, &pat_graph).expect("engine");
            E8Row {
                n,
                tree_rounds: rep.rounds_per_repetition,
                local_rounds: local.rounds,
                correct: rep.detected == truth,
            }
        })
        .collect()
}

/// One row of the E1 ablation.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Scenario name.
    pub scenario: &'static str,
    /// Detection rate of Phase I alone over the repetitions.
    pub phase1_rate: f64,
    /// Detection rate of Phase II alone.
    pub phase2_rate: f64,
    /// Repetitions per phase.
    pub reps: usize,
}

/// The hub-cycle graph: a `C_6` whose six vertices each carry `hubs`
/// pendant leaves — every cycle vertex is high-degree for the `k = 3`
/// threshold `n^{1/2}`.
pub fn hub_cycle_graph(hubs: usize) -> Graph {
    let n = 6 + 6 * hubs;
    let mut b = graphlib::GraphBuilder::new(n);
    for i in 0..6 {
        b.add_edge(i, (i + 1) % 6);
    }
    let mut next = 6;
    for i in 0..6 {
        for _ in 0..hubs {
            b.add_edge(i, next);
            next += 1;
        }
    }
    b.build()
}

/// E1 ablation (DESIGN.md): each phase alone covers only its half of the
/// cycle space. On the hub cycle only Phase I can fire (Phase II removes
/// every cycle vertex); on a low-degree planted cycle only Phase II can
/// (no node clears the Phase-I degree threshold). Uses a calibrated edge
/// bound (`2m >= |E|`, still a valid Turán stand-in for these sparse
/// graphs) to keep schedules short.
pub fn e1_ablation(reps: usize, seed: u64) -> Vec<AblationRow> {
    let k = 3;
    // Scenario A: cycle through hubs.
    let hub = hub_cycle_graph(14); // n = 90, threshold = ceil(sqrt(90)) = 10
                                   // Scenario B: cycle among low-degree nodes.
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let base = generators::random_tree(90, &mut rng);
    let (low, _) = generators::plant_cycle(&base, 6, &mut rng);

    let run = |g: &Graph, name: &'static str| {
        let cfg = detection::EvenCycleConfig::new(k)
            .seed(seed)
            .edge_bound(2 * g.m());
        let mut p1 = 0usize;
        let mut p2 = 0usize;
        for r in 0..reps {
            if detection::even_cycle::run_phase1_once(g, &cfg, r as u64).expect("engine") {
                p1 += 1;
            }
            if detection::even_cycle::run_phase2_once(g, &cfg, r as u64).expect("engine") {
                p2 += 1;
            }
        }
        AblationRow {
            scenario: name,
            phase1_rate: p1 as f64 / reps as f64,
            phase2_rate: p2 as f64 / reps as f64,
            reps,
        }
    };
    vec![run(&hub, "C6 through hubs"), run(&low, "C6 low-degree")]
}

/// E2b — §3.4 bipartite variant: structural metrics per size.
#[derive(Debug, Clone)]
pub struct E2bRow {
    /// Copies per direction.
    pub n_copies: usize,
    /// Family graph size.
    pub graph_size: usize,
    /// Whether the family graph is bipartite.
    pub bipartite: bool,
    /// Undirected player-crossing edges (the cut).
    pub cut: usize,
    /// `m = k⌈n^{1/k}⌉` gadgets per side.
    pub gadgets: usize,
    /// The §3.4 bound `n^{2-1/k-1/s}/(Bk)` at `B = log n`, `s = 2`.
    pub bound: f64,
}

/// E2b — the bipartite family sweep.
pub fn e2b_bipartite(k: usize, copies: &[usize]) -> Vec<E2bRow> {
    use lowerbounds::bipartite::{bipartite_round_bound, BipartiteFamily};
    copies
        .iter()
        .map(|&nc| {
            let fam = BipartiteFamily::new(k, nc);
            let g = fam.build(&[(0, nc - 1)], &[(0, nc - 1)]);
            let parts = fam.partition();
            let cut = g
                .edges()
                .filter(|&(u, v)| parts[u as usize] != parts[v as usize])
                .count();
            E2bRow {
                n_copies: nc,
                graph_size: g.n(),
                bipartite: graphlib::components::is_bipartite(&g),
                cut,
                gadgets: fam.m_gadgets,
                bound: bipartite_round_bound(nc, 2, k, congest::bits_for_domain(nc)),
            }
        })
        .collect()
}

/// One row of E9.
#[derive(Debug, Clone)]
pub struct E9Row {
    /// Scenario name.
    pub scenario: &'static str,
    /// Probe rounds given to the tester.
    pub probes: usize,
    /// Tester detection probability.
    pub tester_detection: f64,
    /// Exact detector found the triangle (always, by exactness).
    pub exact_detects: bool,
    /// Exact neighbor-exchange rounds on the same graph (`Δ + 1`).
    pub exact_rounds: usize,
}

/// A single triangle hidden among three hubs: hubs `0,1,2` form a triangle
/// and each carries `fan` pendant leaves, so a tester probe at a hub hits
/// the triangle pair with probability only `1/C(fan+2, 2)`. The graph is
/// *not* ε-far from triangle-free (one deletion suffices) — the regime the
/// relaxation gives away and the paper's exact setting keeps.
pub fn hidden_triangle_graph(fan: usize) -> Graph {
    let n = 3 + 3 * fan;
    let mut b = graphlib::GraphBuilder::new(n);
    b.add_edge(0, 1);
    b.add_edge(1, 2);
    b.add_edge(2, 0);
    let mut next = 3;
    for hub in 0..3 {
        for _ in 0..fan {
            b.add_edge(hub, next);
            next += 1;
        }
    }
    b.build()
}

/// E9 — the property-testing relaxation (§1.2 contrast): near-perfect on a
/// far graph with one probe, but blind to a single hidden triangle that the
/// exact detectors always find.
pub fn e9_property_testing(trials: usize, seed: u64) -> Vec<E9Row> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let far = generators::gnp(120, 0.25, &mut rng); // triangle-dense: ε-far
    let hidden = hidden_triangle_graph(40);
    let mut rows = Vec::new();
    for (name, g) in [("eps-far G(n,.25)", &far), ("hidden triangle", &hidden)] {
        let exact = detection::detect_triangle(g).expect("engine");
        for &probes in &[1usize, 4, 16] {
            let p = detection::property_testing::detection_probability(g, probes, trials, seed);
            rows.push(E9Row {
                scenario: name,
                probes,
                tester_detection: p,
                exact_detects: exact.detected,
                exact_rounds: exact.rounds,
            });
        }
    }
    rows
}

/// One run of the scale experiment (E3-scale in `BENCH_<date>.json`).
#[derive(Debug, Clone)]
pub struct ScaleRow {
    /// Number of nodes.
    pub n: usize,
    /// Engine rounds across both phases of the single repetition.
    pub rounds: usize,
    /// Total bits on the wire.
    pub total_bits: u64,
    /// Whether the planted `C_4` was found (one repetition only, so this
    /// is a coin toss by design — the workload is the round loop, not the
    /// amplification).
    pub detected: bool,
    /// Shard count the engine was asked for (0 = one shard per lane).
    pub shards: usize,
}

/// The scale-experiment instance: a degree-`4`-bounded sparse graph with a
/// planted `C_4`, built by the streaming generator (peak memory stays
/// `O(n·d)`, no quadratic scratch).
pub fn scale_graph(n: usize, seed: u64) -> Graph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ n as u64);
    generators::planted_c2k(n, 4, 2, &mut rng).0
}

/// E3-scale — the sharded round engine at census sizes (`n = 10^5` in the
/// full baseline): ONE repetition of the Theorem 1.1 `C_4` detector on
/// [`scale_graph`]. The graph is taken pre-built so callers can time the
/// round loop alone; there is no gather baseline here (its round count is
/// linear in `n`, which is the whole point of the theorem).
pub fn e3_scale_on(g: &Graph, shards: usize, seed: u64) -> ScaleRow {
    // Production tuning: fused send pass (the default) plus causal early
    // termination — the mostly-idle Phase II block windows are exactly the
    // rounds ET exists to skip, and at census sizes they dominate.
    let cfg = detection::EvenCycleConfig::new(2)
        .repetitions(1)
        .seed(seed)
        .shards(shards)
        .early_termination(true);
    let rep = detection::detect_even_cycle(g, cfg).expect("engine");
    ScaleRow {
        n: g.n(),
        rounds: rep.total_rounds,
        total_bits: rep.total_bits,
        detected: rep.detected,
        shards,
    }
}

/// [`e3_scale_on`] including graph construction, for one-shot callers.
pub fn e3_scale(n: usize, shards: usize, seed: u64) -> ScaleRow {
    e3_scale_on(&scale_graph(n, seed), shards, seed)
}

/// A small default graph used by the criterion benches.
pub fn bench_graph(n: usize, seed: u64) -> Graph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let base = generators::random_tree(n, &mut rng);
    let (g, _) = generators::plant_cycle(&base, 4, &mut rng);
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fitted_exponent_of_perfect_power() {
        let pts: Vec<(usize, usize)> = (5..10)
            .map(|e| {
                let n = 1usize << e;
                (n, ((n as f64).powf(0.5)) as usize)
            })
            .collect();
        let s = fitted_exponent(&pts);
        assert!((s - 0.5).abs() < 0.05, "slope = {s}");
    }

    #[test]
    fn e1_rows_are_sublinear_in_shape() {
        let rows = e1_even_cycle(2, &[64, 256], 1, 3);
        assert_eq!(rows.len(), 2);
        // Quadrupling n must far less than quadruple the detector rounds.
        let ratio = rows[1].detector_rounds as f64 / rows[0].detector_rounds as f64;
        assert!(ratio < 3.0, "ratio = {ratio}");
    }

    #[test]
    fn e3_has_threshold() {
        let rows = e3_fooling(8);
        assert!(rows.first().unwrap().fooled, "1 bit must be foolable");
        assert!(!rows.last().unwrap().fooled, "log n bits must be safe");
    }

    #[test]
    fn e6_success_rate_at_least_guarantee() {
        let row = e6_color_coding(2, 600, 5);
        assert!(
            row.empirical_success >= row.guarantee,
            "{} < {}",
            row.empirical_success,
            row.guarantee
        );
    }

    #[test]
    fn ablation_negative_directions_are_deterministic() {
        // Phase II can never see the hub cycle (its vertices are removed);
        // Phase I can never fire on the low-degree graph (nothing clears
        // the threshold, and the calibrated M prevents overflow rejects).
        let rows = e1_ablation(400, 3);
        let hub = &rows[0];
        let low = &rows[1];
        assert_eq!(hub.phase2_rate, 0.0, "hub cycle invisible to Phase II");
        assert_eq!(
            low.phase1_rate, 0.0,
            "low-degree cycle invisible to Phase I"
        );
    }

    #[test]
    fn hub_cycle_graph_shape() {
        let g = hub_cycle_graph(5);
        assert_eq!(g.n(), 36);
        for i in 0..6 {
            assert_eq!(g.degree(i), 7);
        }
        assert!(graphlib::cycles::has_cycle(&g, 6));
    }

    #[test]
    fn e7_counts_within_caps() {
        let rows = e7_turan(&[3, 5]);
        for r in rows {
            assert!(r.m <= r.edge_bound);
            assert!(r.high_degree_nodes <= r.high_degree_cap);
        }
    }

    #[test]
    fn e9_contrast_between_far_and_hidden() {
        let rows = e9_property_testing(60, 7);
        let far_1probe = rows
            .iter()
            .find(|r| r.scenario.starts_with("eps") && r.probes == 1)
            .unwrap();
        let hidden_16 = rows
            .iter()
            .find(|r| r.scenario.starts_with("hidden") && r.probes == 16)
            .unwrap();
        assert!(far_1probe.tester_detection > 0.9, "far graphs are easy");
        assert!(
            hidden_16.tester_detection < 0.5,
            "a single hidden triangle evades the tester"
        );
        assert!(
            hidden_16.exact_detects,
            "the exact detector always finds it"
        );
    }

    #[test]
    fn hidden_triangle_graph_has_one_triangle() {
        let g = hidden_triangle_graph(10);
        assert_eq!(graphlib::cliques::count_triangles(&g), 1);
    }

    #[test]
    fn e8_rounds_constant() {
        let rows = e8_tree(&[32, 128], 50, 2);
        assert_eq!(rows[0].tree_rounds, rows[1].tree_rounds);
    }
}
