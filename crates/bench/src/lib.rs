//! # bench — the experiment harness
//!
//! One experiment per theorem/figure of the paper (see DESIGN.md §4 and
//! EXPERIMENTS.md). Each experiment is a pure function returning printable
//! rows; the `report` binary prints them and the criterion benches time the
//! underlying kernels.

#![warn(missing_docs)]

pub mod experiments;
