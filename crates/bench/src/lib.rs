//! # bench — the experiment harness
//!
//! One experiment per theorem/figure of the paper (see DESIGN.md §4 and
//! EXPERIMENTS.md). Each experiment is a pure function returning printable
//! rows; the `report` binary prints them and the criterion benches time the
//! underlying kernels. The `perf` binary (see [`perf`]) times the E1/E2
//! experiments end-to-end across thread counts and writes the wall-clock
//! baselines to a committed `BENCH_<date>.json`.

#![warn(missing_docs)]

pub mod experiments;
pub mod perf;
