#!/usr/bin/env bash
# Records the E1/E2 wall-clock baselines across thread counts into a
# committed BENCH_<date>.json at the repo root.
#
# Usage: scripts/bench.sh [--threads LIST] [--out PATH]
#   --threads LIST  comma-separated RAYON_NUM_THREADS values (default 1,4)
#   --out PATH      output file (default BENCH_<date>.json)
#
# The rayon pool reads RAYON_NUM_THREADS once per process, so the perf
# binary re-executes itself once per requested count; this script only
# builds it in release mode and forwards the flags.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release -p bench --bin perf"
cargo build --release -p bench --bin perf

echo "==> recording perf baselines"
./target/release/perf "$@"

echo "==> exporting canonical run reports (schema-versioned JSON)"
./target/release/perf --run-reports

echo "==> run-report summaries"
./target/release/perf --summary
