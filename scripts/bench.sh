#!/usr/bin/env bash
# Records the E1/E2 wall-clock baselines across thread counts into a
# committed BENCH_<date>.json at the repo root.
#
# Usage: scripts/bench.sh [--threads LIST] [--out PATH] [--tolerance PCT]
#   --threads LIST    comma-separated RAYON_NUM_THREADS values (default 1,4)
#   --out PATH        output file (default BENCH_<date>.json)
#   --tolerance PCT   regression-gate tolerance in percent (default 20)
#
# The rayon pool reads RAYON_NUM_THREADS once per process, so the perf
# binary re-executes itself once per requested count; this script only
# builds it in release mode and forwards the flags.
#
# Before writing the new report, the previous committed BENCH_*.json (same
# host CPU count) is noted; after writing, the new numbers are gated
# against it so a perf regression fails the script.

set -euo pipefail
cd "$(dirname "$0")/.."

tolerance=20
out_path=""
perf_args=()
while [[ $# -gt 0 ]]; do
    case "$1" in
        --tolerance) tolerance="$2"; shift 2 ;;
        --out) out_path="$2"; perf_args+=("$1" "$2"); shift 2 ;;
        *) perf_args+=("$1"); shift ;;
    esac
done

echo "==> cargo build --release -p bench --bin perf"
cargo build --release -p bench --bin perf

# Snapshot the latest baseline BEFORE the run (the run may overwrite
# today's file), so the gate compares new vs old, not new vs itself.
baseline="$(ls BENCH_*.json 2>/dev/null | sort | tail -n 1 || true)"
gate_baseline=""
if [[ -n "$baseline" ]]; then
    gate_baseline="$(mktemp)"
    cp "$baseline" "$gate_baseline"
    echo "==> perf gate will compare against $baseline"
fi

echo "==> recording perf baselines"
./target/release/perf "${perf_args[@]+"${perf_args[@]}"}"

if [[ -n "$gate_baseline" ]]; then
    new_report="$out_path"
    if [[ -z "$new_report" ]]; then
        new_report="$(ls BENCH_*.json 2>/dev/null | sort | tail -n 1)"
    fi
    echo "==> perf regression gate: $new_report vs $baseline (tolerance +${tolerance}%)"
    ./target/release/perf --check --against "$gate_baseline" \
        --current "$new_report" --tolerance "$tolerance"
    rm -f "$gate_baseline"
fi

echo "==> exporting canonical run reports (schema-versioned JSON)"
mkdir -p reports
./target/release/perf --run-reports --out-dir reports

echo "==> run-report summaries"
./target/release/perf --summary | tee reports/report_output.txt
