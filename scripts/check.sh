#!/usr/bin/env bash
# Repo health gate: formatting, lints, and the tier-1 build+test suite.
#
# Usage: scripts/check.sh [--quick]
#   --quick  skip the release build (debug tests only)
#
# fmt and clippy are skipped with a warning when the components are not
# installed (offline/minimal toolchains); the tier-1 suite always runs.

set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

status=0

if cargo fmt --version >/dev/null 2>&1; then
    echo "==> cargo fmt --check"
    cargo fmt --all -- --check || status=1
else
    echo "==> rustfmt not installed; skipping format check" >&2
fi

if cargo clippy --version >/dev/null 2>&1; then
    echo "==> cargo clippy (deny warnings)"
    cargo clippy --workspace --all-targets -- -D warnings || status=1
else
    echo "==> clippy not installed; skipping lints" >&2
fi

# The pre-Simulation run shims (Engine::run/run_nodes, CliqueEngine::run,
# run_reliable) are GONE, not deprecated: nothing in the tree — the engine
# crate included — may mention them, and no new `#[deprecated]` shim may
# appear anywhere. The raw engine constructors remain legal in exactly one
# place, the Simulation builder inside crates/congest.
echo "==> checking the removed run shims are absent everywhere"
shims='\.run_nodes\(|run_reliable\(|#\[deprecated'
if grep -rnE "$shims" \
    src tests examples crates \
    --include='*.rs' --exclude-dir=vendor --exclude-dir=target \
    2>/dev/null; then
    echo "error: a removed run shim (or a new deprecated attribute) was" \
         "reintroduced; the congest::Simulation builder is the only way in" >&2
    status=1
else
    echo "    removed run shims fully absent (no deprecated attributes either)"
fi

echo "==> checking the raw engine constructors stay inside the builder"
ctors='Engine::new\(|CliqueEngine::new\('
if grep -rnE "$ctors" \
    src tests examples \
    crates/core/src crates/commlb/src crates/lowerbounds/src \
    crates/bench/src crates/graphlib/src crates/infotheory/src \
    crates/tracetools/src \
    2>/dev/null; then
    echo "error: raw engine constructor used outside congest::Simulation;" \
         "build runs through the builder" >&2
    status=1
else
    echo "    no raw engine constructors outside congest's builder"
fi

# The CSR routing arena replaced the per-receiver scan of a per-node wire
# list; no non-test code may reintroduce that pattern.
echo "==> checking for the removed per-receiver wire-scan pattern"
wirescan='Wire<|wires\['
if grep -rnE "$wirescan" \
    src examples \
    crates/congest/src crates/core/src crates/commlb/src \
    crates/lowerbounds/src crates/bench/src crates/graphlib/src \
    crates/infotheory/src crates/tracetools/src \
    2>/dev/null; then
    echo "error: per-receiver wire-scan pattern reintroduced;" \
         "route messages through the RoundRouter arena instead" >&2
    status=1
else
    echo "    no per-receiver wire scans in non-test code"
fi

echo "==> cargo doc --no-deps (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet || status=1

if [[ "$quick" -eq 0 ]]; then
    echo "==> cargo build --release (tier-1)"
    cargo build --release
fi

echo "==> cargo test -q (tier-1)"
cargo test -q

echo "==> cargo test -q --workspace"
cargo test -q --workspace

# The pool must give byte-identical results on any thread count; gate both
# the sequential and a genuinely parallel schedule explicitly (the runs
# above use the host default).
echo "==> cargo test -q --workspace (RAYON_NUM_THREADS=1)"
RAYON_NUM_THREADS=1 cargo test -q --workspace

echo "==> cargo test -q --workspace (RAYON_NUM_THREADS=4)"
RAYON_NUM_THREADS=4 cargo test -q --workspace

# The routing property test (new delivery vs naive reference, inbox order
# included) must hold on sequential and parallel schedules alike.
echo "==> routing property test (RAYON_NUM_THREADS=1)"
RAYON_NUM_THREADS=1 cargo test -q -p congest --test routing

echo "==> routing property test (RAYON_NUM_THREADS=4)"
RAYON_NUM_THREADS=4 cargo test -q -p congest --test routing

# The sharding referee: every observable of a run (inbox contents AND
# order, the raw event stream, fault tallies, traffic stats) must be
# byte-identical at shard counts {1, 2, 7, ...} — and that must hold on
# sequential and parallel pools alike, so the matrix covers shards x
# threads.
echo "==> sharding referee (RAYON_NUM_THREADS=1)"
RAYON_NUM_THREADS=1 cargo test -q -p congest --test sharding

echo "==> sharding referee (RAYON_NUM_THREADS=4)"
RAYON_NUM_THREADS=4 cargo test -q -p congest --test sharding

# The u32 id space is a hot-path invariant, not an assumption: builders
# must refuse graphs whose vertex or directed-edge-slot counts would
# overflow the packed ids the sharded engine routes on.
echo "==> u32 id-space overflow gate"
cargo test -q -p graphlib try_new_rejects_oversized_vertex_counts

# FaultStack composition is order-sensitive first-fault-wins and a pure
# function of (spec, seed); the property suite must hold on sequential and
# parallel schedules alike.
echo "==> fault-stack composition property test (RAYON_NUM_THREADS=1)"
RAYON_NUM_THREADS=1 cargo test -q -p congest --test fault_stack

echo "==> fault-stack composition property test (RAYON_NUM_THREADS=4)"
RAYON_NUM_THREADS=4 cargo test -q -p congest --test fault_stack

# Chaos-schedule smoke budget: the deterministic fuzzer sweep (seeded
# schedules across the loss x burstiness x crash x outage x corruption
# space, even-cycle oracle behind the ARQ transport) must report zero
# soundness violations -- and, to prove the harness has teeth, the
# deliberately-broken invariant must be found AND shrunk to a minimal
# reproducer.
echo "==> chaos fuzzer smoke budget (zero violations over seeded schedules)"
cargo test -q --test chaos chaos_fuzzer_finds_no_soundness_violations

echo "==> chaos fuzzer teeth gate (injected violation found and shrunk)"
cargo test -q --test chaos chaos_fuzzer_catches_and_shrinks_a_broken_invariant

# The serve layer's determinism contract: the golden 100-query session
# (one cached planted-C4 graph, 25 seeds x {even-cycle, triangle} x fault
# on/off) must match its checked-in golden byte-for-byte on sequential and
# parallel pools alike.
echo "==> congest-serve golden session (RAYON_NUM_THREADS=1)"
RAYON_NUM_THREADS=1 cargo test -q -p serve --test golden_session

echo "==> congest-serve golden session (RAYON_NUM_THREADS=4)"
RAYON_NUM_THREADS=4 cargo test -q -p serve --test golden_session

# The staged-Simulation API migration is structural, not advisory: the
# even-cycle drivers must run their amplification loops through a staged
# Prepared topology, and the serve layer must never fall back to the
# one-shot Simulation::run* entry points (its whole point is reuse).
echo "==> checking run-API call sites are migrated to Prepared"
if ! grep -q '\.prepare()' crates/core/src/even_cycle.rs; then
    echo "error: crates/core/src/even_cycle.rs no longer stages its" \
         "topology with Simulation::prepare()" >&2
    status=1
elif grep -nE '\.run\(|\.run_with_nodes\(|\.run_clique\(' \
    crates/serve/src --include='*.rs' -r \
    2>/dev/null; then
    echo "error: crates/serve uses a one-shot Simulation run entry point;" \
         "serve executes through Prepared::run_with" >&2
    status=1
else
    echo "    even-cycle drivers stage via prepare(); serve runs through Prepared"
fi

# Perf-regression smoke gate: smallest workload sizes (including the
# E3-scale sharded-engine run at n = 10^4), generous tolerance
# (debug-vs-release noise is not what this guards against — the release
# binary is used; the gate skips itself when no comparable baseline
# exists for this host).
if [[ "$quick" -eq 0 ]]; then
    echo "==> perf regression smoke gate"
    cargo build --release -p bench --bin perf
    ./target/release/perf --check --smoke --tolerance 60 || status=1

    # Budgeted E3-scale smoke: the n = 10^6 trajectory must be walkable
    # under a small wall-clock budget — the sweep doubles n from 10^4 and
    # must complete at least its first size without error.
    echo "==> budgeted e3_scale smoke (8s budget)"
    budget_out="$(./target/release/perf --e3-budget-secs 8)" || status=1
    if [[ -z "$budget_out" ]]; then
        echo "error: e3 budget sweep produced no entries" >&2
        status=1
    else
        echo "$budget_out" | sed 's/^/    /'
    fi
fi

# Trace-toolkit gates: the committed golden run reports must satisfy the
# structural invariant checker, and the critical-path analysis of the
# canonical traced run (causal provenance -> happens-before DAG -> longest
# weighted chain) must be byte-identical across thread counts.
if [[ "$quick" -eq 0 ]]; then
    echo "==> congest-trace check over committed golden run reports"
    cargo build --release -p tracetools --bin congest-trace
    for golden in tests/golden/run_report_*.json; do
        ./target/release/congest-trace check "$golden" || status=1
    done

    # Fusion trace gate: the fused engine's canonical trace must be
    # byte-identical to the committed PRE-fusion golden — the strongest
    # cross-checkable statement that the fused single-sweep send pass
    # changed nothing observable.
    echo "==> fused-engine trace diff against the pre-fusion golden"
    fused_trace="$(mktemp)"
    ./target/release/congest-trace dump --canonical > "$fused_trace"
    if ./target/release/congest-trace diff "$fused_trace" \
        tests/golden/prefusion_canonical_trace.jsonl; then
        echo "    fused canonical trace byte-identical to the pre-fusion golden"
    else
        echo "error: fused engine trace drifted from the pre-fusion golden" >&2
        status=1
    fi
    rm -f "$fused_trace"

    echo "==> critical-path determinism gate (RAYON_NUM_THREADS=1 vs 4)"
    cp1="$(mktemp)" cp4="$(mktemp)"
    RAYON_NUM_THREADS=1 ./target/release/congest-trace critical-path --canonical > "$cp1"
    RAYON_NUM_THREADS=4 ./target/release/congest-trace critical-path --canonical > "$cp4"
    if diff -q "$cp1" "$cp4" >/dev/null; then
        echo "    critical-path summary byte-identical at 1 and 4 threads"
    else
        echo "error: critical-path summary differs across thread counts" >&2
        diff "$cp1" "$cp4" >&2 || true
        status=1
    fi
    rm -f "$cp1" "$cp4"

    # Flight-recorder gates: the committed golden flight record must pass
    # the windowed-dump checker and render through `tail`, and the
    # canonical dump (generated fresh, ring + sketches + reservoir) must
    # be byte-identical across thread counts.
    echo "==> congest-trace check over the committed flight-record golden"
    ./target/release/congest-trace check tests/golden/flight_record.jsonl || status=1

    echo "==> congest-trace tail renders the flight-record golden"
    if ./target/release/congest-trace tail tests/golden/flight_record.jsonl > /dev/null; then
        echo "    flight tail rendered"
    else
        echo "error: congest-trace tail failed on the flight golden" >&2
        status=1
    fi

    echo "==> flight-record determinism gate (RAYON_NUM_THREADS=1 vs 4)"
    fl1="$(mktemp)" fl4="$(mktemp)"
    RAYON_NUM_THREADS=1 ./target/release/congest-trace dump --flight-canonical > "$fl1"
    RAYON_NUM_THREADS=4 ./target/release/congest-trace dump --flight-canonical > "$fl4"
    if diff -q "$fl1" "$fl4" >/dev/null; then
        echo "    canonical flight record byte-identical at 1 and 4 threads"
    else
        echo "error: canonical flight record differs across thread counts" >&2
        diff "$fl1" "$fl4" >&2 || true
        status=1
    fi
    rm -f "$fl1" "$fl4"

    # Serve telemetry determinism: a fixed session's output — responses,
    # batch summary, telemetry line, Prometheus stats — must be
    # byte-identical across thread counts once the wall-clock-only bytes
    # are stripped (the p99_ms/mean_ms fields and the latency histogram
    # series; everything else is counters, which are deterministic).
    echo "==> serve telemetry determinism gate (RAYON_NUM_THREADS=1 vs 4)"
    cargo build --release -p serve --bin congest-serve
    tele_req="$(mktemp)" tele1="$(mktemp)" tele4="$(mktemp)"
    {
        for i in 0 1 2 3 4 5 6 7; do
            printf '{"schema":"congest.serve","version":1,"op":"query","id":"q%s","graph":{"generator":"planted_c2k","n":64,"d":3,"k":2,"seed":5},"scenario":{"kind":"triangle","seed":%s}}\n' "$i" "$i"
        done
        printf '{"schema":"congest.serve","version":1,"op":"flush"}\n'
        printf '{"schema":"congest.serve","version":1,"op":"telemetry"}\n'
        printf '{"schema":"congest.serve","version":1,"op":"stats"}\n'
    } > "$tele_req"
    strip_wallclock() {
        sed -E 's/"(p99_ms|mean_ms)":[0-9.]+/"\1":0/g' | sed '/serve_latency_us/d'
    }
    RAYON_NUM_THREADS=1 ./target/release/congest-serve < "$tele_req" \
        | strip_wallclock > "$tele1"
    RAYON_NUM_THREADS=4 ./target/release/congest-serve < "$tele_req" \
        | strip_wallclock > "$tele4"
    if [[ -s "$tele1" ]] && diff -q "$tele1" "$tele4" >/dev/null; then
        echo "    serve telemetry byte-identical at 1 and 4 threads (wall-clock stripped)"
    else
        echo "error: serve telemetry differs across thread counts" >&2
        diff "$tele1" "$tele4" >&2 || true
        status=1
    fi
    rm -f "$tele_req" "$tele1" "$tele4"
fi

exit "$status"
