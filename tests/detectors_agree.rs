//! Cross-algorithm agreement: every detector in the workspace must agree
//! with centralized ground truth (and hence with each other) on a matrix
//! of random graphs.

use distributed_subgraph_detection::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[test]
fn triangle_detectors_agree_on_random_graphs() {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    for trial in 0..8 {
        let p = 0.08 + 0.04 * trial as f64;
        let g = graphlib::generators::gnp(22, p, &mut rng);
        let truth = graphlib::cliques::count_triangles(&g) > 0;
        let exch = detection::detect_triangle(&g).unwrap();
        assert_eq!(exch.detected, truth, "neighbor exchange, trial {trial}");
        let one =
            detection::detect_triangle_one_round(&g, detection::OneRoundStrategy::Full, trial)
                .unwrap();
        assert_eq!(one.detected, truth, "one-round full, trial {trial}");
        let local = detection::detect_local(&g, &graphlib::generators::cycle(3)).unwrap();
        assert_eq!(local.detected, truth, "LOCAL, trial {trial}");
    }
}

#[test]
fn even_cycle_detector_agrees_with_ground_truth() {
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    for trial in 0..5 {
        let g = graphlib::generators::gnm(36, 40 + 2 * trial, &mut rng);
        let truth = graphlib::cycles::has_cycle(&g, 4);
        let cfg = detection::EvenCycleConfig::new(2)
            .repetitions(6000)
            .seed(trial as u64);
        let rep = detection::detect_even_cycle(&g, cfg).unwrap();
        if truth {
            assert!(rep.detected, "missed C4, trial {trial}");
        } else {
            assert!(!rep.detected, "false positive, trial {trial}");
        }
    }
}

#[test]
fn gather_detects_arbitrary_connected_patterns() {
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let base = graphlib::generators::random_tree(24, &mut rng);
    let (g, _) = graphlib::generators::plant_cycle(&base, 5, &mut rng);
    for (pat, expect) in [
        (graphlib::generators::cycle(5), true),
        (
            graphlib::generators::clique(3),
            graphlib::cliques::count_triangles(&g) > 0,
        ),
        (graphlib::generators::star(2), true),
    ] {
        let r = detection::detect_gather(&g, &pat).unwrap();
        assert_eq!(r.detected, expect);
    }
}

#[test]
fn congest_bandwidth_separates_local_from_gather() {
    // The same pattern search: LOCAL finishes in O(|H|) rounds but needs
    // huge per-edge bandwidth; gather keeps B = O(log n) but pays rounds.
    let mut rng = ChaCha8Rng::seed_from_u64(6);
    let g = graphlib::generators::gnp(48, 0.3, &mut rng);
    let pat = graphlib::generators::cycle(4);
    let local = detection::detect_local(&g, &pat).unwrap();
    let gather = detection::detect_gather(&g, &pat).unwrap();
    assert_eq!(local.detected, gather.detected);
    assert!(local.rounds < gather.rounds);
    assert!(local.max_edge_round_bits > gather.max_edge_round_bits);
}

#[test]
fn tree_detector_agrees_with_vf2() {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let star4 = graphlib::generators::star(4);
    for trial in 0..4 {
        let g = graphlib::generators::gnm(20, 18 + 3 * trial, &mut rng);
        let truth = graphlib::iso::contains_subgraph(&star4, &g);
        let pattern = detection::TreePattern::star(4);
        let rep = detection::detect_tree(&g, &pattern, 40_000, trial as u64).unwrap();
        assert_eq!(rep.detected, truth, "trial {trial}");
    }
}

#[test]
fn detectors_stay_sound_under_message_loss() {
    // Failure injection: with every delivery dropped independently, a
    // detector may miss copies but must never hallucinate one.
    use distributed_subgraph_detection::detection::clique_detect::CliqueDetectNode;
    let g = graphlib::generators::complete_bipartite(6, 6); // triangle-free
    for loss in [0.3, 0.7, 1.0] {
        let horizon = g.max_degree() + 1;
        let out = Simulation::on(&g)
            .bandwidth(Bandwidth::Bits(congest::bits_for_domain(g.n())))
            .loss_rate(loss)
            .max_rounds(horizon + 2)
            .run(|_| CliqueDetectNode::new(3, horizon))
            .unwrap();
        assert!(
            out.network_accepts(),
            "loss {loss}: lost messages cannot create a triangle"
        );
    }
    // And on a real triangle with no loss, detection still works.
    let tri = graphlib::generators::clique(3);
    let out = Simulation::on(&tri)
        .bandwidth(Bandwidth::Bits(congest::bits_for_domain(3)))
        .loss_rate(0.0)
        .max_rounds(5)
        .run(|_| CliqueDetectNode::new(3, 3))
        .unwrap();
    assert!(out.network_rejects());
}

#[test]
fn clique_detection_matrix() {
    let mut rng = ChaCha8Rng::seed_from_u64(8);
    let g = graphlib::generators::gnp(26, 0.5, &mut rng);
    for s in 3..=6 {
        let truth = graphlib::cliques::count_ksub(&g, s) > 0;
        let rep = detection::detect_clique(&g, s).unwrap();
        assert_eq!(rep.detected, truth, "s={s}");
    }
}
