//! Integration checks of the impossibility machinery: the §4 adversary
//! against real algorithms, the §5 distribution against the one-round
//! protocols, and the congested-clique listing against every other
//! enumeration path.

use distributed_subgraph_detection::prelude::*;
use lowerbounds::fooling::{full_id_algo, run_adversary, IdHashAlgo};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[test]
fn fooling_threshold_is_log_n() {
    let n = 16;
    // Below log n bits: fooled. At log n bits: safe.
    for c in 1..congest::bits_for_domain(n) {
        let rep = run_adversary(&IdHashAlgo { bits: c }, n);
        assert!(rep.all_triangles_rejected, "c={c}: Claim 4.3");
        assert!(rep.witness.is_some(), "c={c} must be foolable at n={n}");
        let w = rep.witness.unwrap();
        // The fooled hexagon is triangle-free yet rejected.
        assert!(w.hexagon_rejects.iter().any(|&r| r));
    }
    let rep = run_adversary(&full_id_algo(3 * n), n);
    assert!(rep.witness.is_none());
}

#[test]
fn template_distribution_vs_engine_protocol() {
    // The §5 evaluation path (pure functions) and the engine path must
    // agree on a plain graph where inputs are trivial.
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    for trial in 0..6 {
        let g = graphlib::generators::gnp(16, 0.25, &mut rng);
        let truth = graphlib::cliques::count_triangles(&g) > 0;
        let via_engine =
            detection::detect_triangle_one_round(&g, detection::OneRoundStrategy::Full, trial)
                .unwrap();
        assert_eq!(via_engine.detected, truth, "trial {trial}");
    }
}

#[test]
fn theorem_5_1_error_shape() {
    // Error well above 0 at budget o(n); near 0 at budget n.
    let n = 16;
    let low = lowerbounds::detection_error(n, detection::OneRoundStrategy::Prefix(1), 1500, 10);
    let high = lowerbounds::detection_error(n, detection::OneRoundStrategy::Full, 1500, 10);
    assert!(low > 0.05, "low-budget error = {low}");
    assert!(high < 0.02, "full-budget error = {high}");
}

#[test]
fn listing_agreement_across_families() {
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let graphs: Vec<Graph> = vec![
        graphlib::generators::clique(18),
        graphlib::generators::complete_bipartite(9, 9),
        graphlib::generators::gnp(30, 0.35, &mut rng),
        graphlib::generators::cycle(20),
    ];
    for (i, g) in graphs.iter().enumerate() {
        for s in [3usize, 4] {
            let rep = lowerbounds::list_cliques_congested(g, s, i as u64).unwrap();
            let mut truth = graphlib::cliques::list_ksub(g, s, usize::MAX);
            truth.sort();
            assert_eq!(rep.cliques, truth, "graph {i}, s={s}");
            // Lemma 1.3 on the same instance.
            let (count, bound, _) = lowerbounds::clique_count_ratio(g, s);
            assert!(count as f64 <= bound.max(1.0), "graph {i}, s={s}");
        }
    }
}

#[test]
fn hk_unique_anchor_cliques_survive_in_family_graph() {
    // The family graph, like H_k, must contain exactly one K10 — the
    // anchor that pins every isomorphism.
    let lay = FamilyLayout::new(2, 5);
    let g = lay.build(&[(0, 0)], &[(0, 0)]);
    assert_eq!(graphlib::cliques::count_ksub(&g, 10), 1);
    assert_eq!(graphlib::cliques::clique_number(&g), 10);
}
