//! Golden-file, determinism, and black-box tests for the flight recorder
//! (`congest::obsv::flight`).
//!
//! The canonical flight record — the fault-free planted-`C_4` detector run
//! with a small-capacity recorder, rendered by
//! `bench::perf::canonical_flight_record()` — is compared byte-for-byte
//! against `tests/golden/flight_record.jsonl`. Regenerate with
//! `UPDATE_GOLDEN=1 cargo test --test flight_record`.
//!
//! Determinism is the recorder's headline contract: engines feed it from
//! sequential code in node order and its reservoir RNG is seeded from the
//! run seed, so the dump must be byte-identical at any shards × threads.
//! The shard axis is checked in-process; the thread axis re-runs this test
//! binary per `RAYON_NUM_THREADS` (the pool sizes itself once per
//! process).

use congest::{Bandwidth, CrashStop, FaultSpec, FlightConfig, FlightRecorder, Simulation};
use distributed_subgraph_detection::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::path::PathBuf;
use std::process::Command;
use std::sync::Arc;

const BEGIN: &str = "BEGIN_FLIGHT_FIXTURE";
const END: &str = "END_FLIGHT_FIXTURE";

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/flight_record.jsonl")
}

/// A chaos run (loss + corruption + crashes) with a flight recorder riding
/// along, at a pinned engine shard count. Returns the rendered dump.
fn faulty_flight_dump(shards: usize) -> String {
    let mut rng = ChaCha8Rng::seed_from_u64(23);
    let g = graphlib::generators::gnp(40, 0.12, &mut rng);
    let sched = detection::even_cycle::Schedule::derive(g.n(), 2, None);
    let bandwidth = Bandwidth::Bits(sched.required_bandwidth.max(8));
    let max_rounds = sched.r1_rounds + 2;
    let rec = Arc::new(FlightRecorder::new(FlightConfig {
        ring_rounds: 3,
        ring_events_per_round: 48,
        sample_capacity: 24,
        top_k: 4,
        ..FlightConfig::default()
    }));
    Simulation::on(&g)
        .bandwidth(bandwidth)
        .seed(99)
        .max_rounds(max_rounds)
        .shards(shards)
        .faults(FaultSpec::Stack(vec![
            FaultSpec::IndependentLoss(0.15),
            FaultSpec::BitFlip(0.1),
            FaultSpec::CrashStop(CrashStop::random(2, 3)),
        ]))
        .flight_recorder(Arc::clone(&rec))
        .run(move |_| detection::even_cycle::ColorBfsNode::new(sched.clone()))
        .expect("chaos run failed");
    rec.dump()
}

#[test]
fn canonical_flight_record_matches_golden() {
    let dump = bench::perf::canonical_flight_record();
    assert!(
        dump.starts_with(&format!(
            r#"{{"schema":"{}","version":{}"#,
            congest::FLIGHT_RECORD_SCHEMA,
            congest::FLIGHT_RECORD_VERSION
        )),
        "header line must lead with the schema tag"
    );
    let path = golden_path();
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(&path, &dump).expect("failed to write golden");
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!(
            "missing golden {}; regenerate with UPDATE_GOLDEN=1 cargo test --test flight_record",
            path.display()
        )
    });
    assert_eq!(
        dump, want,
        "flight record drifted from its golden; if intentional, bump \
         FLIGHT_RECORD_VERSION and regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn flight_dump_identical_across_shard_counts() {
    let reference = faulty_flight_dump(1);
    assert!(!reference.is_empty());
    for shards in [2, 7] {
        assert_eq!(
            faulty_flight_dump(shards),
            reference,
            "flight dump at {shards} shards differs from 1 shard"
        );
    }
}

#[test]
fn degraded_run_writes_black_box_dump() {
    // The black-box behavior: a degraded run (here: seeded crashes) writes
    // the flight record to `dump_path` without the caller asking.
    let path = std::env::temp_dir().join(format!("flight_blackbox_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let mut rng = ChaCha8Rng::seed_from_u64(23);
    let g = graphlib::generators::gnp(40, 0.12, &mut rng);
    let sched = detection::even_cycle::Schedule::derive(g.n(), 2, None);
    let bandwidth = Bandwidth::Bits(sched.required_bandwidth.max(8));
    let max_rounds = sched.r1_rounds + 2;
    let rec = Arc::new(FlightRecorder::new(FlightConfig {
        ring_rounds: 3,
        ring_events_per_round: 48,
        sample_capacity: 24,
        top_k: 4,
        dump_path: Some(path.to_string_lossy().into_owned()),
        ..FlightConfig::default()
    }));
    let out = Simulation::on(&g)
        .bandwidth(bandwidth)
        .seed(99)
        .max_rounds(max_rounds)
        .faults(FaultSpec::CrashStop(CrashStop::random(2, 3)))
        .flight_recorder(Arc::clone(&rec))
        .run({
            let sched = sched.clone();
            move |_| detection::even_cycle::ColorBfsNode::new(sched.clone())
        })
        .expect("crash run failed");
    assert!(out.is_degraded(), "crashes must degrade the run");
    let dump = std::fs::read_to_string(&path).expect("degraded run must write the black box");
    assert!(dump.starts_with(r#"{"schema":"congest.flight_record""#));
    assert_eq!(dump, rec.dump(), "the black box is the recorder's dump");
    // Bounded: a 3-round × 48-event ring plus 24 samples stays small no
    // matter how long the run was.
    assert!(
        dump.len() < 64 * 1024,
        "black-box dump is {} bytes — not bounded?",
        dump.len()
    );
    let _ = std::fs::remove_file(&path);
}

/// Helper, not run directly: prints the canonical and the faulty sharded
/// dumps between markers so the parent test can compare across thread
/// counts.
#[test]
#[ignore = "subprocess helper for flight_dump_identical_across_thread_counts"]
fn dump_flight_fixture() {
    println!("{BEGIN}");
    print!("{}", bench::perf::canonical_flight_record());
    for shards in [1, 2, 7] {
        print!("{}", faulty_flight_dump(shards));
    }
    println!("{END}");
}

#[test]
fn flight_dump_identical_across_thread_counts() {
    let exe = std::env::current_exe().expect("cannot locate test binary");
    let mut dumps: Vec<(String, String)> = Vec::new();
    for threads in [Some("1"), Some("4"), None] {
        let mut cmd = Command::new(&exe);
        cmd.args(["--ignored", "--exact", "--nocapture", "dump_flight_fixture"]);
        cmd.env_remove("RAYON_NUM_THREADS");
        if let Some(t) = threads {
            cmd.env("RAYON_NUM_THREADS", t);
        }
        let label = threads.unwrap_or("unset").to_string();
        let out = cmd.output().expect("failed to spawn flight subprocess");
        let stdout = String::from_utf8(out.stdout).expect("flight dump not UTF-8");
        assert!(
            out.status.success(),
            "flight subprocess failed at RAYON_NUM_THREADS={label}:\n{stdout}\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let begin = stdout
            .find(BEGIN)
            .unwrap_or_else(|| panic!("no flight marker at RAYON_NUM_THREADS={label}"))
            + BEGIN.len();
        let end = stdout.find(END).expect("flight end marker missing");
        dumps.push((label, stdout[begin..end].trim().to_string()));
    }
    let (ref_label, reference) = &dumps[0];
    assert!(!reference.is_empty(), "flight fixture produced an empty dump");
    for (label, dump) in &dumps[1..] {
        assert_eq!(
            dump, reference,
            "flight dump at RAYON_NUM_THREADS={label} differs from RAYON_NUM_THREADS={ref_label}"
        );
    }
}
