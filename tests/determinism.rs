//! Determinism across thread counts.
//!
//! The vendored rayon pool guarantees that chunk boundaries — and therefore
//! per-index work assignment — depend only on input length, never on the
//! number of worker threads. Combined with per-node RNG streams and
//! node-order trace recording, a seeded run must produce *byte-identical*
//! results whether it executes sequentially or on four workers.
//!
//! The pool is process-global and sizes itself once from
//! `RAYON_NUM_THREADS`, so each thread count needs its own process: the
//! visible test re-runs this test binary against the `#[ignore]`d fixture
//! dump below with the variable set to `1`, `4`, and unset, and compares
//! the dumps.

use congest::{Bandwidth, CrashStop, FaultSpec, TraceBuffer};
use distributed_subgraph_detection::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::process::Command;

const BEGIN: &str = "BEGIN_DETERMINISM_FIXTURE";
const END: &str = "END_DETERMINISM_FIXTURE";

/// Everything a run can observably produce, as one `Debug` dump: the
/// even-cycle detector's report on a planted instance, and a chaos run's
/// full `RunOutcome` (decisions, stats, fault report) plus its trace.
fn fixture_dump() -> String {
    use std::fmt::Write as _;
    let mut dump = String::new();

    // Scenario 1: the Theorem 1.1 detector, fault-free, on a planted C4.
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let base = graphlib::generators::gnp(48, 0.05, &mut rng);
    let (g, _) = graphlib::generators::plant_cycle(&base, 4, &mut rng);
    let cfg = detection::EvenCycleConfig::new(2).repetitions(4).seed(17);
    let rep = detection::detect_even_cycle(&g, cfg).expect("detector run failed");
    writeln!(dump, "even_cycle: {rep:?}").unwrap();

    // Scenario 2: a chaos run — loss + corruption + crashes stacked — with
    // a trace attached, exercising every fault path of the engine.
    let mut rng2 = ChaCha8Rng::seed_from_u64(23);
    let g2 = graphlib::generators::gnp(40, 0.12, &mut rng2);
    let sched = detection::even_cycle::Schedule::derive(g2.n(), 2, None);
    let bandwidth = Bandwidth::Bits(sched.required_bandwidth.max(8));
    let max_rounds = sched.r1_rounds + 2;
    let trace = TraceBuffer::new(1 << 14);
    let out = Simulation::on(&g2)
        .bandwidth(bandwidth)
        .seed(99)
        .max_rounds(max_rounds)
        .faults(FaultSpec::Stack(vec![
            FaultSpec::IndependentLoss(0.15),
            FaultSpec::BitFlip(0.1),
            FaultSpec::CrashStop(CrashStop::random(2, 3)),
        ]))
        .collector(trace.clone())
        .run(move |_| detection::even_cycle::ColorBfsNode::new(sched.clone()))
        .expect("chaos run failed");
    writeln!(dump, "chaos_outcome: {out:?}").unwrap();
    writeln!(dump, "chaos_trace_dropped: {}", trace.dropped()).unwrap();
    for ev in trace.events() {
        writeln!(dump, "chaos_trace: {ev:?}").unwrap();
    }
    dump
}

/// Helper, not run directly: prints the fixture between markers so the
/// parent test can extract and compare it. (`#[ignore]` keeps it out of the
/// normal run; the parent invokes it with `--ignored`.)
#[test]
#[ignore = "subprocess helper for determinism_across_thread_counts"]
fn dump_determinism_fixture() {
    println!("{BEGIN}");
    print!("{}", fixture_dump());
    println!("{END}");
}

#[test]
fn determinism_across_thread_counts() {
    let exe = std::env::current_exe().expect("cannot locate test binary");
    let mut dumps: Vec<(String, String)> = Vec::new();
    for threads in [Some("1"), Some("4"), None] {
        let mut cmd = Command::new(&exe);
        cmd.args([
            "--ignored",
            "--exact",
            "--nocapture",
            "dump_determinism_fixture",
        ]);
        cmd.env_remove("RAYON_NUM_THREADS");
        if let Some(t) = threads {
            cmd.env("RAYON_NUM_THREADS", t);
        }
        let label = threads.unwrap_or("unset").to_string();
        let out = cmd.output().expect("failed to spawn fixture subprocess");
        let stdout = String::from_utf8(out.stdout).expect("fixture dump not UTF-8");
        assert!(
            out.status.success(),
            "fixture subprocess failed at RAYON_NUM_THREADS={label}:\n{stdout}\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let begin = stdout
            .find(BEGIN)
            .unwrap_or_else(|| panic!("no fixture marker at RAYON_NUM_THREADS={label}"))
            + BEGIN.len();
        let end = stdout.find(END).expect("fixture end marker missing");
        dumps.push((label, stdout[begin..end].trim().to_string()));
    }
    let (ref_label, reference) = &dumps[0];
    assert!(!reference.is_empty(), "fixture produced an empty dump");
    for (label, dump) in &dumps[1..] {
        assert_eq!(
            dump, reference,
            "run at RAYON_NUM_THREADS={label} differs from RAYON_NUM_THREADS={ref_label}"
        );
    }
}
