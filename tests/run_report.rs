//! Golden-file and thread-count stability tests for the run-report
//! exporter (the `obsv` layer's schema-versioned JSON).
//!
//! Three canonical scenarios — a fault-free `detect_even_cycle` run, the
//! same detector behind the ARQ transport at 30 % message loss, and a
//! planted-`C_4` instance under bursty Gilbert–Elliott loss behind the
//! windowed transport — are rendered by
//! `bench::perf::canonical_run_reports()` (the same generator the
//! `perf --run-reports` export uses) and compared byte-for-byte against
//! the checked-in goldens in `tests/golden/`. Regenerate with
//! `UPDATE_GOLDEN=1 cargo test --test run_report`.
//!
//! The pool sizes itself once per process from `RAYON_NUM_THREADS`, so the
//! cross-thread-count check re-runs this test binary against the
//! `#[ignore]`d dump below, once per thread count, and compares outputs.

use congest::{RUN_REPORT_SCHEMA, RUN_REPORT_VERSION};
use std::path::PathBuf;
use std::process::Command;

const BEGIN: &str = "BEGIN_RUN_REPORT_FIXTURE";
const END: &str = "END_RUN_REPORT_FIXTURE";

fn golden_path(label: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("run_report_{label}.json"))
}

#[test]
fn canonical_run_reports_match_goldens() {
    let reports = bench::perf::canonical_run_reports();
    assert_eq!(reports.len(), 3);
    for report in &reports {
        let json = report.to_json();
        // Schema versioning is the contract that makes goldens meaningful.
        assert!(json.contains(&format!(r#""schema": "{RUN_REPORT_SCHEMA}""#)));
        assert!(json.contains(&format!(r#""version": {RUN_REPORT_VERSION}"#)));
        let path = golden_path(&report.label);
        if std::env::var_os("UPDATE_GOLDEN").is_some() {
            std::fs::write(&path, &json).expect("failed to write golden");
            continue;
        }
        let want = std::fs::read_to_string(&path).unwrap_or_else(|_| {
            panic!(
                "missing golden {}; regenerate with UPDATE_GOLDEN=1 cargo test --test run_report",
                path.display()
            )
        });
        assert_eq!(
            json, want,
            "run report '{}' drifted from its golden; if intentional, bump \
             RUN_REPORT_VERSION and regenerate with UPDATE_GOLDEN=1",
            report.label
        );
    }
}

#[test]
fn fault_free_report_has_phase_breakdown() {
    let report = bench::perf::canonical_fault_free_report();
    let json = report.to_json();
    assert!(json.contains(r#""name":"phase1""#));
    assert!(json.contains(r#""name":"phase2""#));
    assert!(json.contains(r#""congestion.max_edge_round_bits""#));
    // Fault-free: the tally section exists and is all zeros.
    assert!(json.contains(r#""dropped":0"#));
}

#[test]
fn arq_loss_report_carries_transport_tallies() {
    let report = bench::perf::canonical_arq_loss_report();
    assert!(
        report.faults.retransmissions > 0,
        "30% loss must force retransmissions"
    );
    assert_eq!(
        report.metrics.counter("transport.retransmissions"),
        Some(report.faults.retransmissions)
    );
}

#[test]
fn windowed_arq_beats_stop_and_wait_on_bursty_loss() {
    // The PR's headline number: on the canonical bursty planted-C4
    // scenario, the sliding-window transport must finish in at most 0.6x
    // the physical rounds of its stop-and-wait (window=1) counterpart,
    // read from the run reports' round counts.
    let windowed = bench::perf::canonical_bursty_report(congest::ReliableConfig::default().window);
    let stop_and_wait = bench::perf::canonical_bursty_report(1);
    assert!(
        windowed.rounds > 0 && stop_and_wait.rounds > 0,
        "both variants must actually run"
    );
    assert!(
        5 * windowed.rounds <= 3 * stop_and_wait.rounds,
        "windowed ARQ took {} rounds vs stop-and-wait {} (ratio {:.3} > 0.6)",
        windowed.rounds,
        stop_and_wait.rounds,
        windowed.rounds as f64 / stop_and_wait.rounds as f64
    );
    // Burst loss must actually have exercised the retransmit machinery.
    assert!(windowed.faults.retransmissions > 0);
    assert_eq!(
        windowed.faults.retransmissions,
        windowed.faults.retransmissions_per_link.iter().sum::<u64>(),
        "per-link retransmit tallies must sum to the scalar"
    );
}

/// Helper, not run directly: prints both rendered reports between markers
/// so the parent test can extract and compare them across thread counts.
#[test]
#[ignore = "subprocess helper for run_reports_identical_across_thread_counts"]
fn dump_run_reports() {
    println!("{BEGIN}");
    for report in bench::perf::canonical_run_reports() {
        print!("{}", report.to_json());
    }
    println!("{END}");
}

#[test]
fn run_reports_identical_across_thread_counts() {
    let exe = std::env::current_exe().expect("cannot locate test binary");
    let mut dumps: Vec<(String, String)> = Vec::new();
    for threads in [Some("1"), Some("4"), None] {
        let mut cmd = Command::new(&exe);
        cmd.args(["--ignored", "--exact", "--nocapture", "dump_run_reports"]);
        cmd.env_remove("RAYON_NUM_THREADS");
        if let Some(t) = threads {
            cmd.env("RAYON_NUM_THREADS", t);
        }
        let label = threads.unwrap_or("unset").to_string();
        let out = cmd.output().expect("failed to spawn report subprocess");
        let stdout = String::from_utf8(out.stdout).expect("report dump not UTF-8");
        assert!(
            out.status.success(),
            "report subprocess failed at RAYON_NUM_THREADS={label}:\n{stdout}\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let begin = stdout
            .find(BEGIN)
            .unwrap_or_else(|| panic!("no report marker at RAYON_NUM_THREADS={label}"))
            + BEGIN.len();
        let end = stdout.find(END).expect("report end marker missing");
        dumps.push((label, stdout[begin..end].trim().to_string()));
    }
    let (ref_label, reference) = &dumps[0];
    assert!(!reference.is_empty(), "report dump came out empty");
    for (label, dump) in &dumps[1..] {
        assert_eq!(
            dump, reference,
            "run report at RAYON_NUM_THREADS={label} differs from RAYON_NUM_THREADS={ref_label}"
        );
    }
}
