//! Chaos suite: fault injection across every fault model.
//!
//! The graceful-degradation contract under faults is one-sided: a detector
//! may *miss* a planted subgraph when messages are lost, links fail, or
//! nodes crash (faults only remove information), but it must never falsely
//! reject an `H`-free graph. The reliable transport then buys detection
//! back on lossy networks at a measurable round/bit cost.

use congest::{bits_for_domain, CrashStop, FaultSpec, LinkFailure, ReliableConfig};
use distributed_subgraph_detection::detection::clique_detect::CliqueDetectNode;
use distributed_subgraph_detection::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// One representative of each fault model, at rates high enough to bite.
/// `sever` must be an edge of the graph under test, so the link-failure
/// model actually intercepts traffic.
fn fault_menu(sever: (usize, usize)) -> Vec<(&'static str, FaultSpec)> {
    vec![
        ("independent-loss", FaultSpec::IndependentLoss(0.25)),
        (
            "gilbert-elliott",
            FaultSpec::GilbertElliott(0.1, 0.4, 0.0, 0.9),
        ),
        ("crash-stop", FaultSpec::CrashStop(CrashStop::random(1, 2))),
        (
            "link-failure",
            FaultSpec::LinkFailure(LinkFailure::single(sever.0, sever.1, 1, usize::MAX)),
        ),
        ("bit-flip", FaultSpec::BitFlip(0.2)),
    ]
}

/// `C_4`-free graphs the even-cycle detector must keep accepting no matter
/// which faults are injected.
fn c4_free_graphs() -> Vec<(&'static str, Graph)> {
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    vec![
        (
            "random-tree",
            graphlib::generators::random_tree(18, &mut rng),
        ),
        ("odd-cycle", graphlib::generators::cycle(5)),
        ("path", graphlib::generators::path(10)),
    ]
}

#[test]
fn even_cycle_never_falsely_rejects_under_faults() {
    for (gname, g) in c4_free_graphs() {
        assert!(
            !graphlib::cycles::has_cycle(&g, 4),
            "{gname} must be C4-free"
        );
        for (fname, spec) in fault_menu((0, 1)) {
            let cfg = detection::EvenCycleConfig::new(2).repetitions(12).seed(3);
            let rep = detection::detect_even_cycle_faulty(&g, cfg, &spec, None).unwrap();
            assert!(
                !rep.detected,
                "{fname} on {gname}: faults must never fabricate a C4 \
                 (faults seen: {:?})",
                rep.faults
            );
        }
    }
}

#[test]
fn even_cycle_stays_sound_behind_reliable_transport() {
    // The ARQ layer must not break soundness either: retransmitted
    // duplicates and given-up frames still never fabricate a cycle.
    let g = graphlib::generators::cycle(5);
    for (fname, spec) in fault_menu((0, 1)) {
        let cfg = detection::EvenCycleConfig::new(2).repetitions(6).seed(9);
        let rep =
            detection::detect_even_cycle_faulty(&g, cfg, &spec, Some(ReliableConfig::default()))
                .unwrap();
        assert!(
            !rep.detected,
            "{fname} behind ARQ: false C4 on an odd cycle"
        );
    }
}

#[test]
fn clique_detector_never_falsely_rejects_under_faults() {
    // Neighbor-exchange clique detection only ever attests edges it heard
    // about, so every fault model can shrink but never grow the witness set.
    let g = graphlib::generators::complete_bipartite(5, 5); // triangle-free
    let horizon = g.max_degree() + 1;
    for (fname, spec) in fault_menu((0, 5)) {
        let out = Simulation::on(&g)
            .bandwidth(Bandwidth::Bits(bits_for_domain(g.n())))
            .faults(spec)
            .seed(21)
            .max_rounds(horizon + 2)
            .run(|_| CliqueDetectNode::new(3, horizon))
            .unwrap();
        assert!(
            !out.surviving_node_rejects(),
            "{fname}: faults cannot create a triangle in K_5,5"
        );
        if fname == "bit-flip" {
            // Structured id payloads don't materialize wire bits, so
            // corruption deliberately degrades to intact delivery.
            assert_eq!(out.faults.corrupted, 0, "ids must be delivered intact");
        } else {
            assert!(
                out.faults.any_faults(),
                "{fname}: the fault model should actually have fired"
            );
        }
    }
}

#[test]
fn reliable_transport_recovers_even_cycle_detection_under_loss() {
    // K_{2,3} contains a C4. At 30% independent loss the bare detector
    // goes blind at this seed/repetition budget; the same budget behind
    // the ARQ transport finds the cycle, paying for it in retransmissions.
    let g = graphlib::generators::complete_bipartite(2, 3);
    let faults = FaultSpec::IndependentLoss(0.3);
    let cfg = detection::EvenCycleConfig::new(2).repetitions(25).seed(1);

    let bare = detection::detect_even_cycle_faulty(&g, cfg, &faults, None).unwrap();
    assert!(
        !bare.detected,
        "tuning drifted: the bare run should miss the C4 at this seed"
    );
    assert!(
        bare.faults.dropped > 0,
        "loss should have fired on the bare run"
    );

    let reliable =
        detection::detect_even_cycle_faulty(&g, cfg, &faults, Some(ReliableConfig::default()))
            .unwrap();
    assert!(
        reliable.detected,
        "the ARQ transport should recover detection (faults: {:?})",
        reliable.faults
    );
    assert!(
        reliable.faults.retransmissions > 0,
        "recovery should have required retransmissions"
    );
    // The recovery is not free: header + ack overhead shows up in the
    // accounted traffic.
    assert!(reliable.total_bits > 0);

    // Sanity: without faults the same budget detects the C4 outright.
    let clean = detection::detect_even_cycle(&g, cfg).unwrap();
    assert!(clean.detected, "fault-free baseline must detect the C4");
}

#[test]
fn degraded_outcomes_stay_sound_under_every_fault_model() {
    // When the ARQ transport exhausts its retry budget (dead links, crashed
    // peers) the run downgrades to `Degraded` instead of erroring. The
    // contract: the decision over the surviving subgraph is still loss-sound
    // (no false C4 on a C4-free graph), the surviving set is a sorted subset
    // of the nodes, and confidence is a well-formed fraction.
    let g = graphlib::generators::cycle(5);
    let mut saw_degraded = false;
    for (fname, spec) in fault_menu((0, 1)) {
        let cfg = detection::EvenCycleConfig::new(2).repetitions(4).seed(5);
        let rep =
            detection::detect_even_cycle_faulty(&g, cfg, &spec, Some(ReliableConfig::default()))
                .unwrap();
        if let Some(d) = &rep.degraded {
            saw_degraded = true;
            assert!(
                !rep.detected,
                "{fname}: degraded run fabricated a C4 on an odd cycle"
            );
            assert!(
                d.surviving.windows(2).all(|w| w[0] < w[1]),
                "{fname}: surviving set must be sorted and duplicate-free: {:?}",
                d.surviving
            );
            assert!(
                d.surviving.iter().all(|&v| v < g.n()),
                "{fname}: surviving node out of range: {:?}",
                d.surviving
            );
            assert!(
                (0.0..=1.0).contains(&d.confidence),
                "{fname}: confidence {} outside [0, 1]",
                d.confidence
            );
            if d.has_quorum(g.n()) {
                assert!(2 * d.surviving.len() > g.n());
            }
        }
    }
    assert!(
        saw_degraded,
        "at least one menu entry (crash-stop, severed link) must degrade"
    );
}

/// The soundness oracle the chaos fuzzer drives: run the even-cycle
/// detector behind the ARQ transport on a C4-free graph and report every
/// breach of the degradation contract as a violation string.
fn soundness_oracle(spec: &FaultSpec, seed: u64) -> Vec<String> {
    let g = graphlib::generators::cycle(5);
    let cfg = detection::EvenCycleConfig::new(2).repetitions(2).seed(seed);
    let mut violations = Vec::new();
    match detection::detect_even_cycle_faulty(&g, cfg, spec, Some(ReliableConfig::default())) {
        Ok(rep) => {
            if rep.detected {
                violations.push("false C4 detection on C4-free graph".to_string());
            }
            if let Some(d) = &rep.degraded {
                if !(0.0..=1.0).contains(&d.confidence) {
                    violations.push(format!("confidence {} out of range", d.confidence));
                }
                if !d.surviving.windows(2).all(|w| w[0] < w[1])
                    || d.surviving.iter().any(|&v| v >= g.n())
                {
                    violations.push(format!("malformed surviving set {:?}", d.surviving));
                }
            }
        }
        Err(e) => violations.push(format!("run error instead of degradation: {e}")),
    }
    violations
}

#[test]
fn chaos_fuzzer_finds_no_soundness_violations() {
    // The smoke budget `scripts/check.sh` enforces: a deterministic sweep
    // of seeded schedules across the whole fault-model space, every one of
    // which must run sound. Failures would come back pre-shrunk.
    let schedules = congest::chaos::enumerate(0xC4, 5, 12);
    assert_eq!(schedules.len(), 12);
    let failures = congest::chaos::fuzz(&schedules, soundness_oracle);
    assert!(
        failures.is_empty(),
        "chaos fuzzer found soundness violations:\n{}",
        failures
            .iter()
            .map(congest::ChaosFailure::to_json)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn chaos_fuzzer_catches_and_shrinks_a_broken_invariant() {
    // Gate that the fuzzer has teeth: hand it a deliberately-too-strong
    // oracle ("no message may ever drop") and it must find a violating
    // schedule and shrink it to a minimal reproducer of at most 3 events.
    let too_strong = |spec: &FaultSpec, seed: u64| -> Vec<String> {
        let g = graphlib::generators::cycle(5);
        let cfg = detection::EvenCycleConfig::new(2).repetitions(2).seed(seed);
        let rep = detection::detect_even_cycle_faulty(&g, cfg, spec, None).unwrap();
        if rep.faults.dropped > 0 {
            vec![format!("{} messages dropped", rep.faults.dropped)]
        } else {
            Vec::new()
        }
    };
    let schedules = congest::chaos::enumerate(0xBAD, 5, 12);
    let failures = congest::chaos::fuzz(&schedules, too_strong);
    assert!(
        !failures.is_empty(),
        "the injected invariant breach must be found"
    );
    for f in &failures {
        assert!(!f.violations.is_empty());
        assert!(
            f.shrunk.events.len() <= 3,
            "reproducer not minimal: {} events",
            f.shrunk.events.len()
        );
        assert!(
            f.shrunk.events.len() <= f.schedule.events.len(),
            "shrinking must never grow the schedule"
        );
        // Minimality: removing any single remaining event kills the repro.
        for i in 0..f.shrunk.events.len() {
            let mut candidate = f.shrunk.clone();
            candidate.events.remove(i);
            assert!(
                too_strong(&candidate.spec(), candidate.seed).is_empty(),
                "shrunk schedule still reducible at event {i}"
            );
        }
        let json = f.to_json();
        assert!(json.contains("congest.chaos_reproducer"));
        assert!(json.contains(r#""shrunk""#));
    }
}

#[test]
fn faulty_runs_reproduce_from_engine_seed() {
    let g = graphlib::generators::complete_bipartite(2, 3);
    let spec = FaultSpec::GilbertElliott(0.2, 0.3, 0.05, 0.9);
    let cfg = detection::EvenCycleConfig::new(2).repetitions(8).seed(17);
    let a = detection::detect_even_cycle_faulty(&g, cfg, &spec, None).unwrap();
    let b = detection::detect_even_cycle_faulty(&g, cfg, &spec, None).unwrap();
    assert_eq!(a.detected, b.detected);
    assert_eq!(a.total_bits, b.total_bits);
    assert_eq!(a.total_rounds, b.total_rounds);
    assert_eq!(
        a.faults, b.faults,
        "fault streams must replay byte-for-byte"
    );
    assert!(
        a.faults.dropped > 0,
        "the bursty channel should drop something"
    );

    let other = detection::EvenCycleConfig::new(2).repetitions(8).seed(18);
    let c = detection::detect_even_cycle_faulty(&g, other, &spec, None).unwrap();
    assert_ne!(
        (a.faults.dropped, a.faults.delivered),
        (c.faults.dropped, c.faults.delivered),
        "a different seed should draw a different fault stream"
    );
}
