//! End-to-end Theorem 1.2: disjointness instance → `G_{X,Y}` → a real
//! CONGEST detection algorithm → two-party cost accounting.

use distributed_subgraph_detection::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn run_case(k: usize, nc: usize, inst: &DisjointnessInstance, seed: u64) {
    let lay = FamilyLayout::new(k, nc);
    let g = lay.build(&inst.x_pairs(), &inst.y_pairs());
    let parts = lay.partition();
    let hk = HkGraph::build(k).graph;

    // Lemma 3.1 + Property 1.
    assert_eq!(
        FamilyLayout::contains_hk(&inst.x_pairs(), &inst.y_pairs()),
        !inst.disjoint()
    );
    assert_eq!(graphlib::diameter::diameter(&g), Some(3));

    // Simulate the gather detector two-party style.
    let bw = Bandwidth::Bits(2 * congest::bits_for_domain(g.n()) + 2);
    let pattern = hk.clone();
    let (outcome, sim) =
        commlb::simulate_two_party(&g, &parts, bw, 16 * (g.n() + g.m() + 4), seed, move |_| {
            detection::generic::GatherNode::new(pattern.clone())
        })
        .expect("engine");

    // The distributed algorithm must answer the disjointness instance.
    assert_eq!(
        outcome.network_rejects(),
        !inst.disjoint(),
        "detection must match intersection (k={k}, nc={nc})"
    );

    // The simulation cost is bounded by rounds × cut × B — the §3.3
    // inequality our lower bound rests on.
    let b_bits = (2 * congest::bits_for_domain(g.n()) + 2) as u64;
    assert!(sim.cut_size() <= lay.cut_bound());
    assert!(
        sim.bits_exchanged <= outcome.stats.rounds as u64 * sim.cut_size() as u64 * b_bits,
        "simulation cost exceeds R * cut * B"
    );
}

#[test]
fn reduction_intersecting_and_disjoint_k2() {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let nc = 9;
    run_case(
        2,
        nc,
        &DisjointnessInstance::random_intersecting(nc, 0.1, &mut rng),
        11,
    );
    run_case(
        2,
        nc,
        &DisjointnessInstance::random_disjoint(nc, 0.1, &mut rng),
        12,
    );
}

#[test]
fn reduction_intersecting_and_disjoint_k3() {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let nc = 8;
    run_case(
        3,
        nc,
        &DisjointnessInstance::random_intersecting(nc, 0.08, &mut rng),
        13,
    );
    run_case(
        3,
        nc,
        &DisjointnessInstance::random_disjoint(nc, 0.08, &mut rng),
        14,
    );
}

#[test]
fn cut_scales_sublinearly_with_universe() {
    // For k = 2, quadrupling n must only double the cut (n^{1/2} scaling):
    // this is the whole trick of §3.2.
    let small = FamilyLayout::new(2, 25);
    let large = FamilyLayout::new(2, 100);
    assert_eq!(2 * small.m_triangles, large.m_triangles);
}

#[test]
fn empty_instance_is_hk_free() {
    let lay = FamilyLayout::new(2, 4);
    let g = lay.build(&[], &[]);
    let hk = HkGraph::build(2).graph;
    assert!(!graphlib::iso::contains_subgraph(&hk, &g));
}
