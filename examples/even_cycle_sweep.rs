//! The Theorem 1.1 headline: even-cycle detection gets *sublinear* in `n`.
//! Sweeps `n` and prints the per-repetition round cost of the `C_4`
//! detector against the `O(n)` neighbor-streaming baseline and the
//! theoretical `n^{1-1/(k(k-1))}` curve.
//!
//! Run with: `cargo run --release --example even_cycle_sweep`

use distributed_subgraph_detection::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let k = 2;
    println!(
        "C_{} detection (k = {k}): rounds per repetition vs n",
        2 * k
    );
    println!(
        "{:>8} {:>12} {:>12} {:>14} {:>12}",
        "n", "detector", "n (linear)", "bound n^(1/2)", "detected"
    );
    for exp in 5..=11 {
        let n = 1usize << exp;
        let mut rng = ChaCha8Rng::seed_from_u64(exp as u64);
        let base = graphlib::generators::random_tree(n, &mut rng);
        let (g, _) = graphlib::generators::plant_cycle(&base, 2 * k, &mut rng);

        let cfg = detection::EvenCycleConfig::new(k)
            .repetitions(1) // one repetition: we are measuring its cost
            .seed(exp as u64);
        let rep = detection::detect_even_cycle(&g, cfg).expect("engine ok");
        println!(
            "{n:>8} {:>12} {:>12} {:>14.1} {:>12}",
            rep.rounds_per_repetition,
            n,
            detection::even_cycle::theorem_bound(n, k),
            rep.detected
        );
    }
    println!(
        "\nThe detector column grows like sqrt(n) (times the Turán constant), \
         while the trivial algorithms grow like n."
    );
}
