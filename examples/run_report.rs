//! The observability layer end to end: run a simulation through the
//! unified [`Simulation`] builder with a structured-event collector
//! attached, then export what happened three ways — a JSONL event trace,
//! a schema-versioned run-report JSON, and a human-readable summary table.
//!
//! Run with: `cargo run --release --example run_report`

use congest::{JsonlTrace, NodeContext, Outgoing};
use distributed_subgraph_detection::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// Max-ID flooding: every node repeatedly broadcasts the largest ID it has
/// seen; after enough rounds for the maximum to reach everyone, the
/// maximum's owner "detects" itself (rejects) and everyone else accepts.
struct FloodMax {
    best: u32,
    me: u32,
    rounds_left: usize,
}

impl congest::NodeAlgorithm for FloodMax {
    type Msg = u32;

    fn init(&mut self, _ctx: &NodeContext, _rng: &mut ChaCha8Rng) -> congest::Outbox<u32> {
        vec![Outgoing::Broadcast(self.best)]
    }

    fn on_round(
        &mut self,
        _ctx: &NodeContext,
        inbox: &congest::Inbox<u32>,
        _rng: &mut ChaCha8Rng,
    ) -> congest::Outbox<u32> {
        for (_, payload) in inbox {
            self.best = self.best.max(**payload);
        }
        self.rounds_left = self.rounds_left.saturating_sub(1);
        if self.rounds_left == 0 {
            Vec::new()
        } else {
            vec![Outgoing::Broadcast(self.best)]
        }
    }

    fn halted(&self) -> bool {
        self.rounds_left == 0
    }

    fn decision(&self) -> Decision {
        if self.best == self.me {
            Decision::Reject // "I am the leader."
        } else {
            Decision::Accept
        }
    }
}

fn main() {
    // --- 1. A raw builder run with a JSONL trace collector attached ---
    let g = graphlib::generators::cycle(8);
    let trace = Arc::new(JsonlTrace::new(256));
    let outcome = Simulation::on(&g)
        .bandwidth(Bandwidth::Bits(32))
        .seed(1)
        .max_rounds(g.n()) // diameter of C_8 is 4; n is a safe budget
        .collector_arc(trace.clone())
        .run(|v| FloodMax {
            best: v as u32,
            me: v as u32,
            rounds_left: g.n() / 2 + 1,
        })
        .expect("flood-max run failed");

    let leaders = outcome
        .decisions
        .iter()
        .filter(|d| **d == Decision::Reject)
        .count();
    println!(
        "flood-max on C_8: {} leader elected in {} rounds, {} bits total",
        leaders, outcome.stats.rounds, outcome.stats.total_bits
    );

    println!("\nfirst structured-trace events (JSONL, one object per line):");
    for line in trace.to_jsonl().lines().take(6) {
        println!("  {line}");
    }
    println!("  ... ({} events recorded)", trace.len());

    // --- 2. The same outcome as a schema-versioned run report ---
    let report = outcome.report("flood_max_c8");
    println!("\nrun report (congest.run_report JSON):");
    println!("{}", report.to_json());

    // --- 3. A full detector run, summarized for humans ---
    // Phase-level breakdowns come from the detector drivers: the Theorem
    // 1.1 even-cycle report splits its traffic into Phase I (color-BFS)
    // and Phase II (cycle threading).
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let base = graphlib::generators::gnp(48, 0.05, &mut rng);
    let (planted, _) = graphlib::generators::plant_cycle(&base, 4, &mut rng);
    let cfg = detection::EvenCycleConfig::new(2).repetitions(4).seed(17);
    let rep = detection::detect_even_cycle(&planted, cfg).expect("detector run failed");
    println!(
        "{}",
        rep.run_report("even_cycle_fault_free").summary_table()
    );
}
