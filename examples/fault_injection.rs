//! Fault injection and recovery, end to end.
//!
//! Runs the Theorem 1.1 even-cycle detector on a lossy/faulty network:
//! first the soundness side (no fault model may fabricate a detection on a
//! C4-free graph), then the recovery side (at 30% message loss the bare
//! detector misses a planted C4 that the reliable ARQ transport finds,
//! paying real header and retransmission bits for it).

use congest::{CrashStop, FaultSpec, ReliableConfig};
use distributed_subgraph_detection::prelude::*;
use rand::SeedableRng;

fn main() {
    // --- Soundness: a C4-free graph under every fault model ---
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
    let clean = graphlib::generators::random_tree(32, &mut rng);
    let cfg = detection::EvenCycleConfig::new(2).repetitions(10).seed(3);
    println!("C4-free tree (n = {}) under fault injection:", clean.n());
    let menu: Vec<(&str, FaultSpec)> = vec![
        ("none", FaultSpec::None),
        ("independent loss 25%", FaultSpec::IndependentLoss(0.25)),
        (
            "bursty (Gilbert-Elliott)",
            FaultSpec::GilbertElliott(0.1, 0.4, 0.0, 0.9),
        ),
        (
            "crash-stop (2 nodes)",
            FaultSpec::CrashStop(CrashStop::random(2, 2)),
        ),
        ("bit-flip 20%", FaultSpec::BitFlip(0.2)),
        (
            "everything at once",
            FaultSpec::Stack(vec![
                FaultSpec::IndependentLoss(0.1),
                FaultSpec::CrashStop(CrashStop::random(1, 2)),
                FaultSpec::BitFlip(0.1),
            ]),
        ),
    ];
    for (name, spec) in &menu {
        let rep = detection::detect_even_cycle_faulty(&clean, cfg, spec, None).unwrap();
        println!(
            "  {name:<26} detected = {:<5} ({})",
            rep.detected,
            rep.faults.summary()
        );
        assert!(!rep.detected, "soundness violated under {name}");
    }

    // --- Recovery: planted C4 at 30% loss, bare vs reliable ---
    let g = graphlib::generators::complete_bipartite(2, 3);
    let loss = FaultSpec::IndependentLoss(0.3);
    let cfg = detection::EvenCycleConfig::new(2).repetitions(25).seed(1);
    let bare = detection::detect_even_cycle_faulty(&g, cfg, &loss, None).unwrap();
    let arq = detection::detect_even_cycle_faulty(&g, cfg, &loss, Some(ReliableConfig::default()))
        .unwrap();
    println!("\nK_2,3 (contains C4) at 30% independent loss:");
    println!(
        "  bare      detected = {:<5} rounds = {:>5} bits = {:>7} ({})",
        bare.detected,
        bare.total_rounds,
        bare.total_bits,
        bare.faults.summary()
    );
    println!(
        "  reliable  detected = {:<5} rounds = {:>5} bits = {:>7} ({})",
        arq.detected,
        arq.total_rounds,
        arq.total_bits,
        arq.faults.summary()
    );

    // --- Reproducibility: the fault stream is a function of the seed ---
    let again = detection::detect_even_cycle_faulty(&g, cfg, &loss, None).unwrap();
    assert_eq!(bare.faults, again.faults);
    assert_eq!(bare.total_bits, again.total_bits);
    println!("\nre-ran the bare config: identical fault stream, bit-for-bit");
}
