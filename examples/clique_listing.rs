//! Congested-clique `K_s` listing (the upper bound matching the paper's
//! `Ω̃(n^{1-2/s})` lower bound): lists every triangle and `K_4` of a random
//! graph with the generalized Dolev–Lenzen–Peled partition scheme, and
//! checks the output against centralized enumeration.
//!
//! Run with: `cargo run --release --example clique_listing`

use distributed_subgraph_detection::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    for (n, p) in [(48usize, 0.25), (64, 0.2), (96, 0.15)] {
        let g = graphlib::generators::gnp(n, p, &mut rng);
        println!("\nG(n={n}, p={p}): m = {}", g.m());
        for s in [3usize, 4] {
            let rep = lowerbounds::list_cliques_congested(&g, s, 5).expect("engine ok");
            let truth = graphlib::cliques::count_ksub(&g, s);
            let (count, bound, ratio) = lowerbounds::clique_count_ratio(&g, s);
            assert_eq!(rep.cliques.len() as u64, truth, "listing must be exact");
            println!(
                "  K_{s}: listed {:>6} cliques (exact ✓) in {:>3} rounds \
                 (shape bound n^(1-2/{s}) = {:>6.1}); Lemma 1.3: {count} <= m^({s}/2) = {bound:.0} \
                 (ratio {ratio:.4})",
                rep.cliques.len(),
                rep.rounds,
                rep.round_bound,
            );
        }
    }
    println!(
        "\nEvery clique is listed exactly once; rounds track n^(1-2/s), the \
         paper's listing bound."
    );
}
