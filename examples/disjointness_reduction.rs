//! The Theorem 1.2 reduction, end to end: Alice and Bob's disjointness
//! inputs become the graph `G_{X,Y}`; a real CONGEST detection algorithm
//! runs on it; the two-party simulation charges only the cut-crossing
//! traffic — and the Ω(n²)-bit disjointness bound turns that into a round
//! lower bound.
//!
//! Run with: `cargo run --release --example disjointness_reduction`

use distributed_subgraph_detection::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let k = 2;
    let nc = 36; // disjointness over [36]^2
    let mut rng = ChaCha8Rng::seed_from_u64(5);

    for (name, inst) in [
        (
            "intersecting",
            DisjointnessInstance::random_intersecting(nc, 0.03, &mut rng),
        ),
        (
            "disjoint",
            DisjointnessInstance::random_disjoint(nc, 0.03, &mut rng),
        ),
    ] {
        let lay = FamilyLayout::new(k, nc);
        let g = lay.build(&inst.x_pairs(), &inst.y_pairs());
        let parts = lay.partition();
        let hk = HkGraph::build(k).graph;

        println!(
            "\n{name}: |X| = {}, |Y| = {}, G_{{X,Y}} has {} vertices, diameter {:?}",
            inst.x_pairs().len(),
            inst.y_pairs().len(),
            g.n(),
            graphlib::diameter::diameter(&g)
        );

        let b_bits = 2 * congest::bits_for_domain(g.n()) + 2;
        let pattern = hk.clone();
        let (outcome, sim) = commlb::simulate_two_party(
            &g,
            &parts,
            Bandwidth::Bits(b_bits),
            16 * (g.n() + g.m() + 4),
            1,
            move |_| {
                distributed_subgraph_detection::detection::generic::GatherNode::new(pattern.clone())
            },
        )
        .expect("engine ok");

        println!(
            "  H_{k} detected = {:<5} (ground truth: intersect = {})",
            outcome.network_rejects(),
            !inst.disjoint()
        );
        println!(
            "  cut = {} directed edges (bound {}), simulation cost = {} bits over {} rounds",
            sim.cut_size(),
            lay.cut_bound(),
            sim.bits_exchanged,
            outcome.stats.rounds
        );
        println!(
            "  => any algorithm needs >= Ω(n²)/(cut·B) = {:.1} rounds on this family",
            lowerbounds::implied_round_lower_bound(nc, sim.cut_size(), b_bits)
        );
    }
    println!(
        "\nAs n grows the implied bound scales like n^{{2-1/k}}/(Bk) — superlinear, \
         while the graph itself has diameter 3 (Theorem 1.2)."
    );
}
