//! Quickstart: build a network, detect subgraphs three ways, and inspect
//! the traffic the CONGEST model actually charges.
//!
//! Run with: `cargo run --release --example quickstart`

use distributed_subgraph_detection::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(42);

    // A sparse "network" with a planted 4-cycle.
    let base = graphlib::generators::random_tree(128, &mut rng);
    let (g, planted) = graphlib::generators::plant_cycle(&base, 4, &mut rng);
    println!(
        "network: n = {}, m = {}, planted C4 on {planted:?}",
        g.n(),
        g.m()
    );

    // 1. Theorem 1.1: sublinear-round randomized C4 detection.
    let cfg = detection::EvenCycleConfig::new(2).repetitions(4096).seed(7);
    let rep = detection::detect_even_cycle(&g, cfg).expect("engine ok");
    println!(
        "even-cycle detector : detected = {} after {} repetition(s); \
         one repetition costs {} rounds (Theorem 1.1 bound ~ n^(1/2) = {:.0})",
        rep.detected,
        rep.repetitions_run,
        rep.rounds_per_repetition,
        detection::even_cycle::theorem_bound(g.n(), 2),
    );

    // 2. The generic CONGEST baseline: gather everything at a leader.
    let c4 = graphlib::generators::cycle(4);
    let gather = detection::detect_gather(&g, &c4).expect("engine ok");
    println!(
        "gather baseline     : detected = {} in {} rounds, {} total bits",
        gather.detected, gather.rounds, gather.total_bits
    );

    // 3. The LOCAL-model algorithm: constant rounds, unbounded messages.
    let local = detection::detect_local(&g, &c4).expect("engine ok");
    println!(
        "LOCAL ball collector: detected = {} in {} rounds, but pushed up to \
         {} bits through a single edge in one round",
        local.detected, local.rounds, local.max_edge_round_bits
    );

    // Ground truth, centralized.
    println!(
        "ground truth        : graph contains C4 = {}",
        graphlib::cycles::has_cycle(&g, 4)
    );
}
