//! The Theorem 4.1 adversary in action: watch it construct, for every
//! low-communication deterministic triangle detector, a hexagon the
//! detector wrongly rejects — and fail (as it must) against the
//! `Θ(log n)`-bit detector.
//!
//! Run with: `cargo run --release --example fooling_adversary`

use lowerbounds::fooling::{full_id_algo, run_adversary, IdHashAlgo};

fn main() {
    let n = 32; // identifiers per namespace part
    println!("namespace: 3 x {n} identifiers; algorithms send c-bit digests\n");
    println!(
        "{:>6} {:>12} {:>14} {:>16} {:>10}",
        "c bits", "transcripts", "largest class", "class floor", "fooled?"
    );
    for c in 1..=congest::bits_for_domain(n) {
        let algo = IdHashAlgo { bits: c };
        let rep = run_adversary(&algo, n);
        assert!(rep.all_triangles_rejected, "Claim 4.3 must hold");
        // |S_t| >= n^3 / 2^{6(C+1)} with C = 2c bits per node.
        let floor = (n * n * n) as f64 / 2f64.powi((6 * (2 * c + 1)) as i32);
        println!(
            "{c:>6} {:>12} {:>14} {floor:>16.3} {:>10}",
            rep.transcript_classes,
            rep.largest_bucket,
            rep.witness.is_some(),
        );
        if let Some(w) = rep.witness {
            if c <= 2 {
                println!(
                    "        -> spliced hexagon {:?}; rejected by nodes {:?}",
                    w.hexagon,
                    w.hexagon_rejects
                        .iter()
                        .enumerate()
                        .filter(|(_, &r)| r)
                        .map(|(i, _)| i)
                        .collect::<Vec<_>>()
                );
            }
        }
    }

    let full = full_id_algo(3 * n);
    let rep = run_adversary(&full, n);
    println!(
        "\nfull-id algorithm ({} bits): fooled = {} — the Ω(log n) bound is tight.",
        congest::bits_for_domain(3 * n),
        rep.witness.is_some()
    );
}
