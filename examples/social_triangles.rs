//! Triangle detection on a social-network-shaped workload: the `O(Δ)`
//! neighbor-exchange algorithm versus one-round protocols with shrinking
//! message budgets (the §5 trade-off, on a realistic graph).
//!
//! Run with: `cargo run --release --example social_triangles`

use detection::triangle::OneRoundStrategy;
use distributed_subgraph_detection::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(2024);
    let g = graphlib::generators::preferential_attachment(300, 3, &mut rng);
    let truth = graphlib::cliques::count_triangles(&g);
    println!(
        "social graph: n = {}, m = {}, Δ = {}, triangles = {truth}",
        g.n(),
        g.m(),
        g.max_degree()
    );

    // Exact multi-round detection.
    let exact = detection::detect_triangle(&g).expect("engine ok");
    println!(
        "neighbor exchange (O(Δ) rounds): detected = {} in {} rounds, {} bits",
        exact.detected, exact.rounds, exact.total_bits
    );

    // One-round protocols: how little can each node say and still find a
    // triangle somewhere in the graph?
    println!("\none-round protocols (budget = adjacency entries forwarded):");
    println!("{:>8} {:>10} {:>14}", "budget", "detected", "B (bits/edge)");
    for budget in [0usize, 1, 2, 4, 8, 16, 64, usize::MAX] {
        let strategy = if budget == usize::MAX {
            OneRoundStrategy::Full
        } else {
            OneRoundStrategy::Prefix(budget)
        };
        let rep = detection::detect_triangle_one_round(&g, strategy, 1).expect("engine ok");
        let label = if budget == usize::MAX {
            "full".to_string()
        } else {
            budget.to_string()
        };
        println!("{label:>8} {:>10} {:>14}", rep.detected, rep.bandwidth_used);
    }
    println!(
        "\nTheorem 5.1 says bandwidth Ω(Δ) = Ω({}) is unavoidable for \
         one-round detection on worst-case inputs.",
        g.max_degree()
    );
}
