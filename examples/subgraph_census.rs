//! A full small-subgraph census of a network, with the unified detector
//! façade cross-checking the distributed side: for every connected shape
//! up to 4 vertices, count its copies centrally, then ask the
//! automatically-chosen distributed detector whether one exists.
//!
//! Run with: `cargo run --release --example subgraph_census`

use detection::Detector;
use distributed_subgraph_detection::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let g = graphlib::generators::gnp(40, 0.12, &mut rng);
    println!("host: G(40, 0.12) with m = {}\n", g.m());
    println!(
        "{:<12} {:>4} {:>4} {:>10} {:>10} {:>9} {:>12}",
        "pattern", "n", "m", "copies", "detected", "rounds", "algorithm"
    );

    for row in graphlib::atlas::census(&g, 4, 5_000_000) {
        let pat = &row.entry.graph;
        let detector = Detector::auto_for(pat);
        let algo = match &detector {
            Detector::EvenCycle { .. } => "even-cycle",
            Detector::Clique { .. } => "clique",
            Detector::Tree { .. } => "tree-DP",
            Detector::Gather { .. } => "gather",
            Detector::Local { .. } => "LOCAL",
            Detector::TriangleOneRound { .. } => "one-round",
        };
        // Skip the single vertex (trivially everywhere, nothing to run).
        if pat.n() < 2 {
            continue;
        }
        let out = detector.detect(&g, 3).expect("engine ok");
        let copies = row
            .copies
            .map(|c| c.to_string())
            .unwrap_or_else(|| ">cap".into());
        let truth = row.copies.map(|c| c > 0);
        if let Some(t) = truth {
            assert_eq!(out.detected, t, "detector disagrees on {}", row.entry.name);
        }
        println!(
            "{:<12} {:>4} {:>4} {:>10} {:>10} {:>9} {:>12}",
            row.entry.name,
            pat.n(),
            pat.m(),
            copies,
            out.detected,
            out.rounds,
            algo
        );
    }
    println!("\nEvery distributed answer matches the centralized census.");
}
